#!/usr/bin/env python
"""Wall-clock benchmark of the study: per-figure seconds + event counts.

Runs the paper's experiments and writes ``BENCH_study.json`` with, per
figure, the wall-clock seconds and the number of discrete events the
simulator processed — the two numbers the DES/clustering/caching
optimizations move.  Modes:

* ``--smoke``      — a small subset (CI-friendly, well under a minute);
* default          — every study experiment at the small scales;
* ``--full``       — Figure 2 at the paper's full processor range, the
  acceptance metric of the performance work (seed: ~122 s);
* ``--jobs-sweep`` — the whole campaign through the :mod:`repro.exec`
  scheduler at jobs=1/2/4, recording wall-clock, executed points and
  dedup counts per job level (plus the host's CPU count, without which
  the numbers are meaningless);
* ``--chaos``      — the seed-7 fault-injection campaign (``python -m
  repro chaos``): wall-clock and event count of all 35 chaos points;
* ``--engine``     — the event-core microbenchmark: the shipped lazy
  calendar queue against PR 4's binary heap on synthetic event
  streams (same-tick cascades, short-horizon uniform, wide-horizon),
  events/sec per structure under the ``engine`` key;
* ``--batch-ab``   — the batch-actor A/B: configurations whose batch
  certificates engage, run with the compilation off and on (same
  numbers, so the delta is pure event-machinery cost), recording
  wall-clock, event counts and the speedup per configuration;
* ``--serve``      — the serving-layer latency benchmark: a cold
  ``python -m repro study fig6`` subprocess (interpreter start +
  import + serial simulation) against a resident daemon's first
  (cache-cold) and warm (cache-hot) submissions of the same figure,
  plus the warm pool's resident events/sec, under the ``serve`` key;
* ``--fork-ab``    — the checkpoint-fork A/B: the chaos campaign with
  the fork pass off vs on (plus a resident resubmission), one
  late-fault chaos cell cold vs ``os.fork``-ed off a clean trunk, and
  a steady step-count column cold vs arithmetic prefix resume —
  byte-identity asserted on every arm, under the ``fork`` key;
* ``--gate PATH``  — the CI perf gate: re-measure the ``--full``
  figures, the chaos campaign and the checkpoint-fork A/B, exit
  non-zero if a figure regresses more than 25 % in wall time, coupled
  events/sec drops more than 25 % (figures or chaos) against the
  committed baseline at ``PATH``, ``fig2a_full`` falls below the
  absolute :data:`COUPLED_EPS_FLOOR`, or the fork A/B misses its
  absolute :data:`FORK_GATE_FLOORS`;
* ``--profile FIG`` — run one figure (any ``--full`` or study
  experiment name) under :mod:`cProfile` and write the top 25
  functions by cumulative time to ``profile-<fig>.txt`` next to the
  JSON report — the first stop when a figure's events/sec drops.

Schema 2 adds ``events_per_second`` per figure — the
machine-independent throughput number (wall seconds vary with the
host; events are deterministic).  Schema 3 adds the ``engine``
microbenchmark section and ``events_per_second`` to the ``chaos``
entry (now part of the gate).  Schema 4 adds the ``batch_ab`` section
and gates the figures' events/sec too.  Schema 5 adds the ``serve``
section — the warm-daemon submission latencies the serving layer
exists to deliver.  Schema 6 adds the beyond-the-paper ``fig_sst`` /
``fig_pmem`` figures to the ``--full`` set and the gate, and the
chaos entry now covers the extended (pmem-tier) campaign.  Schema 7
adds the ``fork`` section (checkpoint-fork A/B, gated on absolute
speedup floors) and best-of-``repeats`` timing in the ``engine``
microbenchmark.  Schema 8 records the ``exec.pool.effective_jobs``
clamp per ``jobs_sweep`` level (skipping levels the clamp makes
redundant instead of timing pure worker-spawn overhead) and adds the
contended-path compilers (dimes, mpiio, flexpath) to ``batch_ab``.

The run cache is cleared before every experiment so timings measure
simulation, not memoization.  Results merge into the output JSON, so
the ``figures`` and ``jobs_sweep`` sections can be refreshed
independently.

Usage::

    PYTHONPATH=src python benchmarks/bench_study.py \\
        [--smoke|--full|--jobs-sweep] [-o PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time
from heapq import heappop, heappush
from typing import Callable, Dict, List

from repro.core import figures, runcache
from repro.core.study import Study
from repro.sim.engine import Environment


class EventCounter:
    """Counts processed events by wrapping ``Environment.step``."""

    def __init__(self) -> None:
        self.count = 0
        self._orig: Callable = Environment.step

    def __enter__(self) -> "EventCounter":
        orig = self._orig

        def counting_step(env) -> None:
            self.count += 1
            orig(env)

        Environment.step = counting_step
        return self

    def __exit__(self, *exc) -> None:
        Environment.step = self._orig


def experiments(mode: str) -> Dict[str, Callable[[], object]]:
    if mode == "smoke":
        return {
            "fig2a": lambda: figures.fig2_end_to_end("lammps"),
            "fig6": figures.fig6_index_cost,
        }
    if mode == "full":
        return {
            "fig2a_full": lambda: figures.fig2_end_to_end("lammps", full=True),
            "fig2b_full": lambda: figures.fig2_end_to_end("laplace", full=True),
            # The beyond-the-paper families ride the same gate: their
            # sweeps exercise the SST pacing queue and the pmem mirror
            # path, whose per-event cost the study figures never touch.
            "fig_sst": figures.fig_sst_streaming,
            "fig_pmem": figures.fig_pmem_tier,
        }
    study = Study()
    return dict(study.experiments())


def jobs_sweep(levels=(1, 2, 4)) -> Dict[str, Dict[str, object]]:
    """Wall-clock the full campaign at each parallelism level.

    Every entry records the ``exec.pool.effective_jobs`` clamp next to
    the requested level, and levels whose clamped worker count was
    already measured are skipped instead of run: on a single-CPU host
    ``--jobs 2`` used to report *slower* than ``--jobs 1`` purely from
    worker start-up overhead, which read as a scaling regression when
    it was really the same serial run plus spawn cost.
    """
    from repro.exec.pool import effective_jobs

    sweep: Dict[str, Dict[str, object]] = {}
    measured: Dict[int, int] = {}
    for jobs in levels:
        effective = effective_jobs(jobs)
        if effective in measured:
            sweep[str(jobs)] = {
                "effective_jobs": effective,
                "skipped": f"clamps to {effective} workers, "
                           f"already measured at jobs={measured[effective]}",
            }
            print(f"jobs={jobs}   skipped (clamps to jobs={measured[effective]})")
            continue
        runcache.clear()
        start = time.perf_counter()
        study = Study(jobs=jobs)
        study.run()
        elapsed = time.perf_counter() - start
        entry: Dict[str, object] = {
            "seconds": round(elapsed, 3),
            "effective_jobs": effective,
        }
        if study.run_report is not None:
            entry["executed"] = study.run_report.executed
            entry["deduped_refs"] = study.run_report.deduped_refs
            entry["rounds"] = len(study.run_report.rounds)
        sweep[str(jobs)] = entry
        measured[effective] = jobs
        print(f"jobs={jobs}   {elapsed:8.2f} s  ({effective} workers)")
    return sweep


def profile_figure(fig: str, output: str) -> int:
    """Run one figure under cProfile; top-25 cumulative to a text file.

    The dump lands at ``profile-<fig>.txt`` next to the JSON report
    path, so ``-o`` steers both.  Cache cleared first: a memoized run
    would profile the replay machinery instead of the simulator.
    """
    import cProfile
    import pstats

    runners: Dict[str, Callable] = {}
    for mode in ("study", "full"):
        runners.update(experiments(mode))
    if fig not in runners:
        print(f"unknown figure {fig!r}; choose from: "
              f"{', '.join(sorted(runners))}", file=sys.stderr)
        return 2
    runcache.clear()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    runners[fig]()
    profiler.disable()
    elapsed = time.perf_counter() - start
    path = os.path.join(os.path.dirname(os.path.abspath(output)) or ".",
                        f"profile-{fig}.txt")
    with open(path, "w") as fh:
        pstats.Stats(profiler, stream=fh).sort_stats(
            "cumulative").print_stats(25)
    print(f"{fig:12s} {elapsed:8.2f} s under cProfile -> {path}")
    return 0


def chaos_bench(seed: int = 7) -> Dict[str, object]:
    """Wall-clock the chaos campaign (serial, cold cache).

    Runs with ``fork=False``: the fork pass moves cell execution into
    ``os.fork`` children this process's event counter cannot see, so
    its events/sec would be meaningless here.  The fork path is
    measured on its own terms by :func:`fork_ab_bench`.
    """
    from repro.chaos import run_campaign

    runcache.clear()
    with EventCounter() as counter:
        start = time.perf_counter()
        run_campaign(seed=seed, fork=False)
        elapsed = time.perf_counter() - start
    print(f"chaos(seed={seed}) {elapsed:8.2f} s  {counter.count:>12,} events")
    return {
        "seed": seed,
        "seconds": round(elapsed, 3),
        "events": counter.count,
        "events_per_second": round(counter.count / elapsed, 1)
        if elapsed > 0 else 0.0,
    }


# ---------------------------------------------------- engine microbench

class _HeapQueue:
    """PR 4's event queue: one binary heap of ``(tick, eid, event)``.

    The eid tie-break tuple is the structure's real cost — every push
    allocates a triple and every sift compares tuples lexicographically.
    """

    __slots__ = ("_heap", "_eid", "now_tick")

    def __init__(self) -> None:
        self._heap: list = []
        self._eid = 0
        self.now_tick = 0

    def push(self, delay: int, ev) -> None:
        heappush(self._heap, (self.now_tick + delay, self._eid, ev))
        self._eid += 1

    def pop(self):
        tick, _eid, ev = heappop(self._heap)
        self.now_tick = tick
        return ev

    def empty(self) -> bool:
        return not self._heap


class _CalendarQueue:
    """The shipped lazy calendar queue (``Environment._insert``/``step``
    with the event bodies stripped, so the comparison times the queue
    structure alone).  A singleton bucket stores its event *bare* — a
    list is only built on collision and recycled through a free pool
    once drained — so the dominant one-event-per-tick case (sparse
    uniform/wide streams) costs one dict store and no allocation, and
    per-bucket FIFO order *is* the eid tie-break."""

    __slots__ = ("_buckets", "_ticks", "_current", "_pos", "_bfree",
                 "now_tick")

    def __init__(self) -> None:
        self._buckets: dict = {}
        self._ticks: list = []
        self._current = None
        self._pos = 0
        self._bfree: list = []
        self.now_tick = 0

    def push(self, delay: int, ev) -> None:
        if delay == 0 and self._current is not None:
            self._current.append(ev)
            return
        tick = self.now_tick + delay
        buckets = self._buckets
        got = buckets.get(tick)
        if got is None:
            buckets[tick] = ev
            heappush(self._ticks, tick)
        elif type(got) is list:
            got.append(ev)
        else:
            bfree = self._bfree
            if bfree:
                bucket = bfree.pop()
                bucket.append(got)
                bucket.append(ev)
            else:
                bucket = [got, ev]
            buckets[tick] = bucket

    def pop(self):
        pos = self._pos
        cur = self._current
        if cur is not None and pos < len(cur):
            self._pos = pos + 1
            return cur[pos]
        if cur is not None:
            del cur[:]
            self._bfree.append(cur)
            self._current = None
        tick = heappop(self._ticks)
        got = self._buckets.pop(tick)
        self.now_tick = tick
        if type(got) is list:
            self._current = got
            self._pos = 1
            return got[0]
        self._pos = 0
        return got

    def empty(self) -> bool:
        return (self._current is None or self._pos >= len(self._current)) \
            and not self._ticks


#: the engine's observed delay mix: over half of all events land on the
#: current tick (succeed() cascades, process kick-offs, resource grants)
_ENGINE_STREAMS = {
    "cascade": lambda rng: 0 if rng.random() < 0.55 else rng.randrange(1, 1 << 20),
    "uniform": lambda rng: rng.randrange(1, 1 << 20),
    "wide": lambda rng: rng.randrange(1, 1 << 44),
}


def _stream_delays(profile: str, n_ops: int, seed: int) -> List[int]:
    rng = random.Random(seed)
    draw = _ENGINE_STREAMS[profile]
    return [draw(rng) for _ in range(n_ops)]


def _drive(queue, warm: List[int], delays: List[int]) -> float:
    """Pop/push ``delays`` through ``queue``; returns elapsed seconds."""
    for i, d in enumerate(warm):
        queue.push(d, i)
    pop, push = queue.pop, queue.push
    start = time.perf_counter()
    for i, d in enumerate(delays):
        pop()
        push(d, i)
    return time.perf_counter() - start


def engine_bench(n_ops: int = 200_000, seed: int = 1234,
                 repeats: int = 3) -> Dict[str, object]:
    """Heap vs calendar queue on synthetic event streams.

    Each stream holds the queue at a constant population (1000 pending
    events) and measures pure pop+push throughput.  Both structures see
    the same absolute ticks, and their pop sequences are asserted
    identical first — the calendar queue's per-bucket FIFO *is* the
    heap's ``(tick, eid)`` order.  Each timing is the best of
    ``repeats`` passes: the first pass runs on cold caches and can be
    ~10% slower than steady state, which single-shot timing would
    misattribute to the structure under test.
    """
    results: Dict[str, object] = {"ops": n_ops, "repeats": repeats}
    streams: Dict[str, object] = {}
    for profile in _ENGINE_STREAMS:
        warm = _stream_delays(profile, 1000, seed ^ 0xA5A5)
        delays = _stream_delays(profile, n_ops, seed)

        check_n = min(n_ops, 20_000)
        heap_q, cal_q = _HeapQueue(), _CalendarQueue()
        for i, d in enumerate(warm):
            heap_q.push(d, i)
            cal_q.push(d, i)
        for i, d in enumerate(delays[:check_n]):
            assert heap_q.pop() == cal_q.pop(), profile
            heap_q.push(d, 1000 + i)
            cal_q.push(d, 1000 + i)

        heap_s = min(_drive(_HeapQueue(), warm, delays)
                     for _ in range(repeats))
        cal_s = min(_drive(_CalendarQueue(), warm, delays)
                    for _ in range(repeats))
        entry = {
            "heap_events_per_second": round(n_ops / heap_s, 1),
            "calendar_events_per_second": round(n_ops / cal_s, 1),
            "speedup": round(heap_s / cal_s, 3),
        }
        streams[profile] = entry
        print(f"engine/{profile:8s} heap {n_ops / heap_s:>12,.0f} ev/s   "
              f"calendar {n_ops / cal_s:>12,.0f} ev/s   "
              f"({heap_s / cal_s:.2f}x)")
    results["streams"] = streams
    return results


# ----------------------------------------------------- batch actor A/B

#: configurations whose batch certificates engage (see
#: tests/workflows/test_batch_actors.py) at a step count long enough
#: for the per-step event machinery to dominate the boot phase
_BATCH_AB_CONFIGS = {
    "dataspaces_matched_titan": dict(
        machine="titan", method="dataspaces", workflow="synthetic",
        nsim=8, nana=8, num_servers=8, transport="ugni", app_axis=0,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
        steps=1000, fidelity="clustered",
    ),
    "decaf_islands_cori": dict(
        machine="cori", method="decaf", nsim=512, nana=512,
        steps=1000, fidelity="clustered",
    ),
    # The contended-path compilers (this PR): shared metadata CPU,
    # Lustre MDS queue + OST cursors, and the 1:1 stone pipeline all
    # collapse into max-plus queue scans over the full group.
    "dimes_metadata_titan": dict(
        machine="titan", method="dimes", workflow="lammps",
        nsim=32, nana=16, steps=1000, fidelity="clustered",
    ),
    "mpiio_lustre_cori": dict(
        machine="cori", method="mpiio", workflow="lammps",
        nsim=32, nana=16, steps=1000, fidelity="clustered",
    ),
    "flexpath_pipeline_titan": dict(
        machine="titan", method="flexpath", workflow="lammps",
        nsim=4, nana=4, steps=1000, fidelity="clustered",
    ),
}


def batch_ab_bench() -> Dict[str, object]:
    """A/B the batch-actor compilation on configurations it certifies.

    Both arms produce float-identical results (asserted), so the
    wall/event deltas measure exactly what the compilation removes:
    the per-rank generator chains' event traffic.
    """
    from repro.staging.ndarray import Variable
    from repro.workflows import run_coupled

    results: Dict[str, object] = {}
    for ident, config in _BATCH_AB_CONFIGS.items():
        kwargs = dict(config)
        if kwargs.get("workflow") == "synthetic":
            kwargs["variable"] = Variable("v", (8192, 64))
        arms = {}
        outputs = {}
        for arm, batch in (("per_rank", False), ("batch", True)):
            runcache.clear()
            with EventCounter() as counter:
                start = time.perf_counter()
                result = run_coupled(batch_actors=batch, **kwargs)
                elapsed = time.perf_counter() - start
            arms[arm] = {
                "seconds": round(elapsed, 3),
                "events": counter.count,
                "fidelity": result.fidelity,
            }
            outputs[arm] = (
                result.end_to_end, result.put_time, result.get_time,
                result.bytes_staged,
            )
        assert outputs["per_rank"] == outputs["batch"], ident
        assert arms["batch"]["fidelity"] == "clustered+batch", ident
        arms["identical"] = True
        arms["event_reduction"] = round(
            arms["per_rank"]["events"] / max(1, arms["batch"]["events"]), 1
        )
        arms["speedup"] = round(
            arms["per_rank"]["seconds"] / arms["batch"]["seconds"], 2
        ) if arms["batch"]["seconds"] > 0 else float("inf")
        results[ident] = arms
        print(f"batch-ab/{ident:26s} per-rank "
              f"{arms['per_rank']['seconds']:6.2f} s "
              f"{arms['per_rank']['events']:>10,} ev   batch "
              f"{arms['batch']['seconds']:6.2f} s "
              f"{arms['batch']['events']:>8,} ev   "
              f"({arms['event_reduction']}x fewer events)")
    return results


# ---------------------------------------------------- serving latency

def serve_bench(figure: str = "fig6") -> Dict[str, object]:
    """Cold CLI start vs resident-daemon submissions of one figure.

    Three numbers frame what keeping the service resident buys:

    * ``cold_study_seconds`` — a fresh ``python -m repro study`` run
      of the figure in a subprocess: interpreter start, imports,
      serial simulation (what a batch user pays every invocation);
    * ``first_submission_seconds`` — submit+wait against a freshly
      started daemon (cache cold): the points still simulate, but the
      interpreter/import cost is already sunk in the resident pool;
    * ``warm_submission_seconds`` — the same submission again: every
      point a cache hit, only planning and replay remain.
    """
    import subprocess
    import tempfile
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.daemon import ServeDaemon

    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env = dict(os.environ, PYTHONPATH=src)
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "study", figure],
        check=True, capture_output=True, env=env,
    )
    cold = time.perf_counter() - start

    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    sock = os.path.join(tmp, "bench.sock")
    runcache.clear()
    daemon = ServeDaemon(socket_path=sock, jobs=os.cpu_count() or 1)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    daemon.ready.wait(60)
    try:
        with ServeClient(socket_path=sock).connect(retry_seconds=10) as c:
            timings = []
            for _ in range(2):
                start = time.perf_counter()
                final = c.wait(c.submit_figure(figure)["job"])
                timings.append(time.perf_counter() - start)
                assert final["state"] == "done", final
            stats = c.stats()
    finally:
        daemon.request_shutdown()
        thread.join(60)
    first, warm = timings
    print(f"serve/{figure}: cold study {cold:6.2f} s   first submission "
          f"{first:6.2f} s   warm submission {warm:6.2f} s   "
          f"({cold / warm:.1f}x over cold)")
    return {
        "figure": figure,
        "cold_study_seconds": round(cold, 3),
        "first_submission_seconds": round(first, 3),
        "warm_submission_seconds": round(warm, 3),
        "speedup_warm_vs_cold": round(cold / warm, 1) if warm > 0 else 0.0,
        "pool_events_total": stats["pool"]["events_total"],
        "pool_events_per_second_resident":
            stats["pool"]["events_per_second_resident"],
        "cache": {k: stats["cache"][k]
                  for k in ("hits", "misses", "stores", "seeds")},
    }


# ---------------------------------------------------- checkpoint-fork A/B

def _results_identical(a, b) -> bool:
    """Field-by-field RunResult equality, NaN-aware, fork-metadata blind.

    ``forked``/``fork_fallback`` are provenance, not physics; ``library``
    is a live object.  TimeSeries lacks ``__eq__`` and aborted runs
    carry NaN finish times, so both need explicit handling.
    """
    import dataclasses
    import math

    from repro.sim.monitor import TimeSeries

    for f in dataclasses.fields(a):
        if f.name in ("library", "forked", "fork_fallback"):
            continue
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, TimeSeries) or isinstance(y, TimeSeries):
            if x is None or y is None:
                return False
            if list(x.times) != list(y.times) or \
                    list(x.values) != list(y.values):
                return False
            continue
        if isinstance(x, float) and isinstance(y, float):
            if x != y and not (math.isnan(x) and math.isnan(y)):
                return False
            continue
        if x != y:
            return False
    return True


#: the steady column: one boundary snapshot serves every steps count
#: (cori, where the steady certificate engages for every library)
_FORK_COLUMN_STEPS = (8, 16, 32, 64, 128)
_FORK_COLUMN_CONFIG = dict(
    machine="cori", method="dataspaces", nsim=32, nana=16,
    fidelity="steady",
)


def _export_bytes(export_dir: str) -> Dict[str, bytes]:
    out = {}
    for name in sorted(os.listdir(export_dir)):
        with open(os.path.join(export_dir, name), "rb") as fh:
            out[name] = fh.read()
    return out


def fork_ab_bench(seed: int = 7, repeats: int = 3) -> Dict[str, object]:
    """Cold vs checkpoint-forked wall clock, byte-identity asserted.

    Three comparisons, three grains of the same optimization:

    * ``matrix``  — the whole seed-``seed`` chaos campaign with the
      fork pass off vs on; the exported tables must be byte-identical.
      Also times a *resubmission* of the forked campaign against the
      resident cache/prefix state (what a ``repro.serve`` what-if
      resubmission pays) against full re-simulation of the matrix;
    * ``cell``    — one late-fault chaos cell at a step count long
      enough for the shared prefix to dominate: cold pays the clean
      baseline plus a full faulted run, forked pays one trunk and an
      ``os.fork`` child that simulates only the post-trigger suffix;
    * ``column``  — a steady step-count column: cold simulates the
      warm-up prefix once per steps count, forked snapshots the steady
      boundary on the first run and serves every other count by
      arithmetic resume (microseconds).

    Wall times are best-of-``repeats``; identity is asserted on every
    repeat — forking must never change bytes, only wall-clock.  The
    first-run ``matrix`` arms are reported for honesty but not gated
    on speedup: the campaign's 5-step cells cost single milliseconds,
    the same order as ``os.fork`` itself, and on a single-CPU host
    (``cpus`` in the report) the children cannot overlap the trunk —
    the structural wins are the resubmission, the cell and the column.
    """
    import shutil
    import tempfile

    from repro.chaos.campaign import CELL, run_campaign
    from repro.chaos.faults import FaultEvent, FaultPlan
    from repro.core import forkpoint
    from repro.workflows import driver, run_coupled

    results: Dict[str, object] = {}

    # -- matrix: the full campaign, fork pass off vs on ----------------
    arms: Dict[str, float] = {}
    exports: Dict[str, Dict[str, bytes]] = {}
    forks_served = 0
    resident = math.inf
    for arm, fork in (("cold", False), ("forked", True)):
        best = math.inf
        for _ in range(repeats):
            runcache.clear()
            tmp = tempfile.mkdtemp(prefix=f"repro-fork-ab-{arm}-")
            before = forkpoint.STATS.forks_served
            start = time.perf_counter()
            run_campaign(seed=seed, export_dir=tmp, fork=fork)
            best = min(best, time.perf_counter() - start)
            forks_served = forkpoint.STATS.forks_served - before
            exports[arm] = _export_bytes(tmp)
            if fork:
                # resubmission against the resident cache/prefix state:
                # the what-if latency the serve daemon keeps warm
                start = time.perf_counter()
                run_campaign(seed=seed, export_dir=tmp, fork=fork)
                resident = min(resident, time.perf_counter() - start)
                assert _export_bytes(tmp) == exports[arm], \
                    "resident resubmission exports diverged"
            shutil.rmtree(tmp)
        arms[arm] = best
    assert exports["cold"] == exports["forked"], \
        "forked campaign exports diverged from cold"
    results["matrix"] = {
        "seed": seed,
        "cold_seconds": round(arms["cold"], 3),
        "forked_seconds": round(arms["forked"], 3),
        "speedup": round(arms["cold"] / arms["forked"], 2),
        "resident_seconds": round(resident, 3),
        "resident_speedup": round(arms["cold"] / resident, 2),
        "forks_served": forks_served,
        "byte_identical": True,
    }
    print(f"fork-ab/matrix  cold {arms['cold']:6.2f} s   forked "
          f"{arms['forked']:6.2f} s   ({arms['cold'] / arms['forked']:.2f}x, "
          f"{forks_served} forks)   resident resubmission {resident:6.2f} s "
          f"({arms['cold'] / resident:.2f}x)")

    # -- cell: one late-fault cell off a shared trunk ------------------
    # 60 steps with the crash at put 430/480: the shared prefix is ~90%
    # of the run, the scale at which forking one variant pays even
    # without a second CPU to overlap the child on.
    plan = FaultPlan(
        events=(FaultEvent("server_crash", after_puts=430, target=0),),
        watchdog=4000.0,
    )
    cell_kwargs = dict(machine="titan", method="dataspaces",
                       **dict(CELL, steps=60))
    key = driver.point_key(fault_plan=plan, **cell_kwargs)
    cold_best = fork_best = math.inf
    for _ in range(repeats):
        runcache.clear()
        start = time.perf_counter()
        baseline = run_coupled(**cell_kwargs)
        faulted = run_coupled(fault_plan=plan, **cell_kwargs)
        cold_best = min(cold_best, time.perf_counter() - start)

        runcache.clear()
        trigger, reason = forkpoint.plan_trigger(plan, key=key)
        assert trigger is not None, reason
        host = forkpoint.ChaosForkHost([trigger])
        start = time.perf_counter()
        trunk = run_coupled(fork_host=host, **cell_kwargs)
        collected = host.collect()
        fork_best = min(fork_best, time.perf_counter() - start)
        assert not host.declines, host.declines
        assert _results_identical(trunk, baseline), "trunk != baseline"
        assert _results_identical(collected[key], faulted), \
            "forked cell != cold cell"
    results["cell"] = {
        "fault": "server_crash",
        "steps": cell_kwargs["steps"],
        "cold_seconds": round(cold_best, 3),
        "forked_seconds": round(fork_best, 3),
        "speedup": round(cold_best / fork_best, 2),
        "identical": True,
    }
    print(f"fork-ab/cell    cold {cold_best:6.2f} s   forked "
          f"{fork_best:6.2f} s   ({cold_best / fork_best:.2f}x)")

    # -- column: steps counts off one steady-boundary snapshot ---------
    cold_runs: Dict[int, object] = {}
    cold_best = fork_best = math.inf
    for _ in range(repeats):
        cold_total = 0.0
        for steps in _FORK_COLUMN_STEPS:
            runcache.clear()
            start = time.perf_counter()
            cold_runs[steps] = run_coupled(steps=steps, **_FORK_COLUMN_CONFIG)
            cold_total += time.perf_counter() - start
        cold_best = min(cold_best, cold_total)

        runcache.clear()
        start = time.perf_counter()
        fork_runs = {
            steps: run_coupled(steps=steps, **_FORK_COLUMN_CONFIG)
            for steps in _FORK_COLUMN_STEPS
        }
        fork_total = time.perf_counter() - start
        fork_best = min(fork_best, fork_total)
        for steps in _FORK_COLUMN_STEPS:
            assert _results_identical(fork_runs[steps], cold_runs[steps]), \
                f"prefix-restored steps={steps} diverged from cold"
        restored = [s for s in _FORK_COLUMN_STEPS
                    if (fork_runs[s].forked or "").startswith("prefix:")]
        assert len(restored) == len(_FORK_COLUMN_STEPS) - 1, \
            f"expected all but the first column entry restored: {restored}"
    results["column"] = {
        "config": {k: v for k, v in _FORK_COLUMN_CONFIG.items()},
        "steps": list(_FORK_COLUMN_STEPS),
        "cold_seconds": round(cold_best, 3),
        "forked_seconds": round(fork_best, 3),
        "speedup": round(cold_best / fork_best, 2),
        "identical": True,
    }
    print(f"fork-ab/column  cold {cold_best:6.2f} s   forked "
          f"{fork_best:6.2f} s   ({cold_best / fork_best:.2f}x, "
          f"{len(_FORK_COLUMN_STEPS)} steps counts)")
    return results


#: CI fails when a gated figure's wall time exceeds baseline by this
GATE_TOLERANCE = 0.25
GATED_FIGURES = ("fig2a_full", "fig2b_full", "fig_sst", "fig_pmem")

#: absolute coupled-throughput floor for fig2a_full (ev/s).  Raised
#: when the contended-path compilers landed (188-222k ev/s observed
#: across runs): DIMES and MPI-IO now compile their shared
#: metadata-CPU / Lustre-MDS queues on the Figure 2 cells whose order
#: is provable, so the figure's wall is dominated by the remaining
#: *honest* per-rank declines (DataSpaces fan-in, FlexPath fan-out
#: notification graphs, the titan MPI-IO mixed exact/steady tick
#: collisions) — the floor gates the per-event cost of that exact
#: machinery, not the compilation win (see ``batch_ab`` for that).
COUPLED_EPS_FLOOR = 185_000


def perf_gate(
    baseline_path: str,
    measured: Dict[str, Dict],
    measured_chaos: Dict[str, object],
) -> int:
    """Compare measured perf against the committed baseline.

    Figures gate on wall time (must not grow past the tolerance) and
    on coupled events/sec (must not drop past it, and ``fig2a_full``
    must additionally clear the absolute :data:`COUPLED_EPS_FLOOR`);
    the chaos campaign gates on events/sec.  Returns the number of
    regressions beyond :data:`GATE_TOLERANCE`.  A missing baseline
    entry is a hard failure too — the gate must never pass vacuously.
    """
    with open(baseline_path) as fh:
        payload = json.load(fh)
    baseline = payload.get("figures", {})
    failures = 0
    for ident in GATED_FIGURES:
        if ident not in baseline:
            print(f"GATE FAIL {ident}: no baseline in {baseline_path}")
            failures += 1
            continue
        base = baseline[ident]["seconds"]
        now = measured[ident]["seconds"]
        ratio = now / base if base > 0 else float("inf")
        verdict = "ok" if ratio <= 1.0 + GATE_TOLERANCE else "GATE FAIL"
        print(f"{verdict:9s} {ident}: {now:.2f}s vs baseline {base:.2f}s "
              f"({ratio:.0%} of baseline, tolerance "
              f"{1.0 + GATE_TOLERANCE:.0%})")
        if ratio > 1.0 + GATE_TOLERANCE:
            failures += 1
        base_eps = baseline[ident].get("events_per_second")
        if not base_eps:
            print(f"GATE FAIL {ident}: no events_per_second baseline in "
                  f"{baseline_path}")
            failures += 1
            continue
        now_eps = measured[ident]["events_per_second"]
        eps_ratio = now_eps / base_eps
        verdict = "ok" if eps_ratio >= 1.0 - GATE_TOLERANCE else "GATE FAIL"
        print(f"{verdict:9s} {ident}: {now_eps:,.0f} ev/s vs baseline "
              f"{base_eps:,.0f} ev/s ({eps_ratio:.0%} of baseline, floor "
              f"{1.0 - GATE_TOLERANCE:.0%})")
        if eps_ratio < 1.0 - GATE_TOLERANCE:
            failures += 1
    if COUPLED_EPS_FLOOR is not None:
        now_eps = measured["fig2a_full"]["events_per_second"]
        verdict = "ok" if now_eps >= COUPLED_EPS_FLOOR else "GATE FAIL"
        print(f"{verdict:9s} fig2a_full: {now_eps:,.0f} ev/s vs absolute "
              f"floor {COUPLED_EPS_FLOOR:,.0f} ev/s")
        if now_eps < COUPLED_EPS_FLOOR:
            failures += 1
    base_eps = payload.get("chaos", {}).get("events_per_second")
    if not base_eps:
        print(f"GATE FAIL chaos: no events_per_second baseline in "
              f"{baseline_path}")
        failures += 1
    else:
        now_eps = measured_chaos["events_per_second"]
        ratio = now_eps / base_eps
        verdict = "ok" if ratio >= 1.0 - GATE_TOLERANCE else "GATE FAIL"
        print(f"{verdict:9s} chaos: {now_eps:,.0f} ev/s vs baseline "
              f"{base_eps:,.0f} ev/s ({ratio:.0%} of baseline, floor "
              f"{1.0 - GATE_TOLERANCE:.0%})")
        if ratio < 1.0 - GATE_TOLERANCE:
            failures += 1
    return failures


#: absolute checkpoint-fork gate floors (not baseline-relative: the
#: A/B's cold arm is re-measured in the same process, so the ratio is
#: already host-normalized)
FORK_GATE_FLOORS = {
    ("matrix", "resident_speedup"): 3.0,
    ("cell", "speedup"): 1.0,
    ("column", "speedup"): 3.0,
}


def fork_gate(fork: Dict[str, Dict]) -> int:
    """Gate the checkpoint-fork A/B on its absolute speedup floors.

    Byte-identity is asserted inside :func:`fork_ab_bench` itself (the
    bench dies rather than reporting divergent bytes), so the gate
    checks the recorded flags and the speedup floors.
    """
    failures = 0
    for section, flag in (("matrix", "byte_identical"),
                          ("cell", "identical"), ("column", "identical")):
        ok = fork[section].get(flag, False)
        print(f"{'ok' if ok else 'GATE FAIL':9s} fork/{section}: "
              f"{flag}={ok}")
        if not ok:
            failures += 1
    for (section, key), floor in FORK_GATE_FLOORS.items():
        got = fork[section][key]
        verdict = "ok" if got >= floor else "GATE FAIL"
        print(f"{verdict:9s} fork/{section}: {key} {got:.2f}x vs floor "
              f"{floor:.1f}x")
        if got < floor:
            failures += 1
    return failures


def _merge_existing(path: str, report: Dict) -> Dict:
    """Keep the other mode's sections when refreshing one of them."""
    try:
        with open(path) as fh:
            existing = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return report
    for key in ("figures", "jobs_sweep", "chaos", "engine", "batch_ab",
                "serve", "fork"):
        if key in existing and key not in report:
            report[key] = existing[key]
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true",
                       help="small CI subset")
    group.add_argument("--full", action="store_true",
                       help="Figure 2 at the paper's full scales")
    group.add_argument("--jobs-sweep", action="store_true",
                       help="the whole campaign at jobs=1/2/4")
    group.add_argument("--chaos", action="store_true",
                       help="the seed-7 fault-injection campaign")
    group.add_argument("--engine", action="store_true",
                       help="the event-core microbenchmark: calendar "
                            "queue vs binary heap on synthetic streams")
    group.add_argument("--batch-ab", action="store_true",
                       help="A/B the batch-actor compilation (off vs on) "
                            "on configurations its certificates engage")
    group.add_argument("--serve", action="store_true",
                       help="serving-layer latency: cold CLI study vs "
                            "first and warm submissions to a resident "
                            "daemon")
    group.add_argument("--fork-ab", action="store_true",
                       help="checkpoint-fork A/B: the chaos campaign, one "
                            "late-fault cell and a steady step-count "
                            "column, cold vs forked, byte-identity "
                            "asserted")
    group.add_argument("--profile", metavar="FIG",
                       help="run one figure under cProfile and write the "
                            "top 25 cumulative functions to "
                            "profile-<fig>.txt (no JSON report)")
    group.add_argument("--gate", metavar="BASELINE",
                       help="CI perf gate: rerun the --full figures, the "
                            "chaos campaign and the fork A/B; fail on a "
                            ">25%% wall-time regression (figures), a "
                            ">25%% events/sec drop (chaos) vs the "
                            "committed BASELINE json, or a fork speedup "
                            "below its absolute floor")
    parser.add_argument("-o", "--output", default="BENCH_study.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.profile:
        return profile_figure(args.profile, args.output)

    report: Dict[str, object] = {"schema": 8, "cpus": os.cpu_count()}
    if args.jobs_sweep:
        report["mode"] = "jobs-sweep"
        report["jobs_sweep"] = jobs_sweep()
        total = sum(e.get("seconds", 0.0)
                    for e in report["jobs_sweep"].values())
    elif args.chaos:
        report["mode"] = "chaos"
        report["chaos"] = chaos_bench()
        total = report["chaos"]["seconds"]
    elif args.engine:
        report["mode"] = "engine"
        start = time.perf_counter()
        report["engine"] = engine_bench()
        total = time.perf_counter() - start
    elif args.batch_ab:
        report["mode"] = "batch-ab"
        start = time.perf_counter()
        report["batch_ab"] = batch_ab_bench()
        total = time.perf_counter() - start
    elif args.serve:
        report["mode"] = "serve"
        start = time.perf_counter()
        report["serve"] = serve_bench()
        total = time.perf_counter() - start
    elif args.fork_ab:
        report["mode"] = "fork-ab"
        start = time.perf_counter()
        report["fork"] = fork_ab_bench()
        total = time.perf_counter() - start
    else:
        if args.gate:
            mode = "full"
        else:
            mode = "smoke" if args.smoke else ("full" if args.full else "study")
        report["mode"] = mode
        report["figures"] = {}
        total = 0.0
        for ident, runner in experiments(mode).items():
            runcache.clear()
            with EventCounter() as counter:
                start = time.perf_counter()
                runner()
                elapsed = time.perf_counter() - start
            total += elapsed
            report["figures"][ident] = {
                "seconds": round(elapsed, 3),
                "events": counter.count,
                "events_per_second": round(counter.count / elapsed, 1)
                if elapsed > 0 else 0.0,
            }
            print(f"{ident:12s} {elapsed:8.2f} s  {counter.count:>12,} events")
        if args.gate:
            report["chaos"] = chaos_bench()
            total += report["chaos"]["seconds"]
            report["fork"] = fork_ab_bench()
    report["total_seconds"] = round(total, 3)
    report = _merge_existing(args.output, report)

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\ntotal {total:.2f} s -> {args.output}")
    if args.gate:
        failures = perf_gate(args.gate, report["figures"], report["chaos"])
        failures += fork_gate(report["fork"])
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
