"""Benchmark: regenerate Figure 6 (SFC indexing cost)."""

import pytest

from repro.core.figures import fig6_index_cost
from repro.hpc import MB


@pytest.mark.benchmark(group="fig6")
def test_fig6(run_once):
    table = run_once(fig6_index_cost, sizes=(1 * MB, 4 * MB, 16 * MB, 64 * MB))
    ds = table.column("dataspaces server (MB)")
    dimes = table.column("dimes server (MB)")

    # Quadratic trend: every 4x problem-size step grows the DataSpaces
    # server footprint superlinearly.
    assert ds[-1] / ds[0] > 10

    # The paper's magnitudes: ~6 GB DataSpaces server at 64 MB/proc,
    # DIMES metadata servers around 154 MB.
    assert 3000 < ds[-1] < 9000
    assert max(dimes) < 400
    # DIMES stays near-flat across the sweep.
    assert max(dimes) < 3 * min(dimes)
