"""Benchmark: regenerate Figure 7 (server memory breakdown)."""

import pytest

from repro.core.figures import fig7_memory_breakdown


@pytest.mark.benchmark(group="fig7")
def test_fig7(run_once):
    table = run_once(fig7_memory_breakdown)
    ds = {r["category"]: r["MB"] for r in table.rows if r["method"] == "dataspaces"}
    decaf = {r["category"]: r["MB"] for r in table.rows if r["method"] == "decaf"}

    # Each DataSpaces server handles 16 Laplace processors x 128 MB
    # = 2 GB raw; with buffering the staged total exceeds the raw size.
    assert ds["staged"] > 2048
    assert ds["index"] > 0
    assert ds["TOTAL(peak)"] > ds["staged"]

    # Decaf: 2 processors x 128 MB = 256 MB raw -> ~1.8 GB rich objects.
    assert decaf["staged-rich"] == pytest.approx(1792, rel=0.35)
    assert decaf["staged-rich"] > 5 * 256
