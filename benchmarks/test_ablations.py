"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each ablation flips one internal
design knob of a library and measures the consequence, quantifying the
trade-offs the paper discusses qualitatively.
"""

import pytest

from repro.hpc import Cluster, TITAN, UINT32_MAX
from repro.sim import Environment
from repro.staging import (
    SfcIndex,
    StagingConfig,
    Variable,
    index_memory_bytes,
)
from repro.workflows import laplace_variable, run_coupled


@pytest.mark.benchmark(group="ablation")
def test_ablation_flexpath_queue_size(benchmark):
    """queue_size (Table I sets 1): deeper queues decouple the pipeline
    at the cost of writer-side memory."""

    def sweep():
        rows = []
        for queue_size in (1, 2, 4):
            config = StagingConfig(
                transport="nnti", use_adios=True, queue_size=queue_size
            )
            result = run_coupled(
                "titan", "lammps", "flexpath", nsim=64, nana=32, steps=5,
                config=config,
            )
            rows.append((queue_size, result.end_to_end, result.sim_memory.peak()))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    times = [t for _, t, _ in rows]
    mems = [m for _, _, m in rows]
    # Deeper queues never slow the run down...
    assert times[-1] <= times[0] + 1e-6
    # ...but the publisher queue pins more writer memory.
    print("\nqueue_size sweep (size, end-to-end s, writer peak bytes):")
    for row in rows:
        print(f"  {row}")


@pytest.mark.benchmark(group="ablation")
def test_ablation_max_versions_window(benchmark):
    """max_versions (Table I sets 1): a wider version window overlaps
    the pipeline but multiplies server-resident staged data."""

    def sweep():
        rows = []
        for window in (1, 2, 3):
            config = StagingConfig(transport="ugni", max_versions=window)
            result = run_coupled(
                "titan", "lammps", "dataspaces", nsim=64, nana=32, steps=5,
                config=config,
            )
            rows.append(
                (window, result.end_to_end, max(result.server_memory_peaks))
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    mems = [m for _, _, m in rows]
    assert mems[-1] > mems[0]  # more live versions -> more server memory
    print("\nmax_versions sweep (window, end-to-end s, server peak bytes):")
    for row in rows:
        print(f"  {row}")


@pytest.mark.benchmark(group="ablation")
def test_ablation_dim_bits(benchmark):
    """Table IV's overflow lesson: 32-bit dimension counters crash on
    large domains; 64-bit (the suggested resolve) does not."""

    def run():
        # One dimension past the 32-bit boundary; 1-byte elements keep
        # the actual volume (8 GB) stageable across 16 servers.
        big = Variable("big", (UINT32_MAX + 1,), elem_size=1)
        results = {}
        for bits in (64, 32):
            config = StagingConfig(transport="ugni", dim_bits=bits)
            result = run_coupled(
                "titan", "synthetic", "dataspaces", nsim=8, nana=4, steps=1,
                variable=big, app_axis=0, config=config, num_servers=16,
                sim_step_seconds=0.0, ana_step_seconds=0.0,
                topology_overrides=dict(sim_ranks_per_node=1,
                                        ana_ranks_per_node=1),
            )
            results[bits] = result
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    assert results[64].ok
    assert not results[32].ok
    assert "DimensionOverflow" in results[32].failure


@pytest.mark.benchmark(group="ablation")
def test_ablation_buffering_factor(benchmark):
    """DataSpaces' internal staging buffers (Figure 7): turning the
    buffering off shrinks server memory by exactly the staged share."""

    def run():
        peaks = {}
        for factor in (1.0, 1.25, 1.5):
            config = StagingConfig(transport="ugni", buffer_factor=factor)
            # Cori: 2 GB staged per server needs its roomier RDMA window
            # (on Titan this configuration is the Figure 3 crash).
            result = run_coupled(
                "cori", "laplace", "dataspaces", nsim=64, nana=32, steps=2,
                num_servers=4, config=config,
            )
            assert result.ok, result.failure
            peaks[factor] = max(result.server_memory_peaks)
        return peaks

    peaks = benchmark.pedantic(run, iterations=1, rounds=1)
    assert peaks[1.0] < peaks[1.25] < peaks[1.5]


@pytest.mark.benchmark(group="ablation")
def test_ablation_index_hilbert_vs_flat(benchmark):
    """Index structure: the padded Hilbert SFC vs a flat per-dimension
    bucket index — the quadratic-vs-linear memory trade of Figure 6."""

    def run():
        rows = []
        for width in (2048, 4096, 8192, 16384):
            dims = (4096, width * 16)
            sfc = index_memory_bytes(dims, num_servers=4)
            # A flat DHT index costs one bucket per application region.
            flat = 16 * 2048  # regions x descriptor bytes
            rows.append((dims, sfc, flat))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    sfc_costs = [s for _, s, _ in rows]
    # SFC cost explodes with domain growth; the flat index does not.
    assert sfc_costs[-1] / sfc_costs[0] > 10
    print("\nindex cost (dims, SFC bytes, flat-DHT bytes):")
    for row in rows:
        print(f"  {row}")


@pytest.mark.benchmark(group="ablation")
def test_ablation_sfc_locality(benchmark):
    """Why DataSpaces uses an SFC at all: curve locality keeps small
    regions on few servers (cheap queries) versus striped placement."""

    def run():
        index = SfcIndex((256, 256), num_servers=16)
        from repro.staging import Region

        small = [
            len(index.servers_for_region(Region((x, y), (x + 16, y + 16))))
            for x in range(0, 256, 64)
            for y in range(0, 256, 64)
        ]
        return small

    touched = benchmark.pedantic(run, iterations=1, rounds=1)
    # A 16x16 tile of a 256x256 domain over 16 servers touches few.
    assert max(touched) <= 4
