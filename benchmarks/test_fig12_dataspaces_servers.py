"""Benchmark: regenerate Figure 12 (DataSpaces server scaling, sockets)."""

import pytest

from repro.core.figures import fig12_dataspaces_servers


@pytest.mark.benchmark(group="fig12")
def test_fig12(run_once):
    table = run_once(fig12_dataspaces_servers, server_counts=(1, 2, 4, 8))
    e2e = table.column("end-to-end (s)")
    staging = table.column("staging (s)")

    # More servers help, monotonically, but end-to-end only by a few
    # percent per doubling (the paper's ~5.4 %)...
    assert all(b <= a for a, b in zip(e2e, e2e[1:]))
    total_e2e_gain = (e2e[0] - e2e[-1]) / e2e[0]
    assert 0 < total_e2e_gain < 0.25

    # ...while the staging portion improves by noticeably more
    # (the paper saw up to 20.1 % per doubling on data staging).
    total_staging_gain = (staging[0] - staging[-1]) / staging[0]
    assert total_staging_gain > total_e2e_gain
