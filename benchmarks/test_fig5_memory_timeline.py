"""Benchmark: regenerate Figure 5 (memory timelines, Cori)."""

import pytest

from repro.core.figures import fig5_memory_timeline


@pytest.mark.benchmark(group="fig5")
def test_fig5_lammps(run_once):
    table = run_once(
        fig5_memory_timeline,
        workflow="lammps",
        methods=("dataspaces", "dimes", "flexpath", "decaf"),
    )

    def peak(method, column):
        rows = [r for r in table.rows if r["method"] == method and r.get(column) is not None]
        return max(r[column] for r in rows)

    # ~400 MB per LAMMPS processor for DataSpaces/DIMES/Flexpath
    # (173 MB calculation + ~227 MB library).
    for method in ("dataspaces", "dimes", "flexpath"):
        assert peak(method, "sim (MB)") == pytest.approx(400, rel=0.2)
    # Decaf needs ~40 % more.
    assert peak("decaf", "sim (MB)") > 1.3 * peak("flexpath", "sim (MB)")
    # Flexpath has no stand-alone staging servers.
    assert peak("flexpath", "server (MB)") == 0.0
    # DIMES servers only hold metadata: far below DataSpaces servers.
    assert peak("dimes", "server (MB)") < 0.5 * peak("dataspaces", "server (MB)")


@pytest.mark.benchmark(group="fig5")
def test_fig5_laplace(run_once):
    table = run_once(
        fig5_memory_timeline,
        workflow="laplace",
        methods=("dataspaces", "decaf"),
        nsim=64,
        nana=32,
    )
    ds_server = max(
        r["server (MB)"] for r in table.rows if r["method"] == "dataspaces"
    )
    # DataSpaces stages GBs per server for the 128 MB/proc Laplace run.
    assert ds_server > 1000
