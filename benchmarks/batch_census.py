#!/usr/bin/env python
"""Batch-engagement census: which Figure 2 cells compile, which decline.

Sweeps every (machine, scale, method) cell of the Figure 2 grid at the
study's small scales and records, per cell, the fidelity the driver
settled on and — when the batch compilation did not engage — the
verbatim decline reason from ``batch_fallback``.  The output JSON is
uploaded as a CI artifact so engagement regressions (a certificate
that silently stops firing, or a decline string that drifts) are
visible per run without digging through test output.

The census is *descriptive*, not a gate: the per-cell expectations
that must hold are pinned in ``tests/workflows/test_batch_actors.py``.

Usage::

    PYTHONPATH=src python benchmarks/batch_census.py [-o batch_census.json]
"""

from __future__ import annotations

import argparse
import json
from collections import Counter
from typing import Dict

from repro.core.figures import FIG2_METHODS, SMALL_SCALES
from repro.workflows import run_coupled


def census(workflow: str = "lammps", steps: int = 5) -> Dict[str, object]:
    cells = []
    for machine in ("titan", "cori"):
        for nsim, nana in SMALL_SCALES:
            for method in FIG2_METHODS:
                # batch_actors=True (vs the default auto) so cells whose
                # clustering never engaged still record the decline
                # reason instead of a bare None.
                result = run_coupled(
                    machine, workflow, method, nsim=nsim, nana=nana,
                    steps=steps, fidelity="steady+clustered",
                    batch_actors=True,
                )
                cells.append({
                    "machine": machine,
                    "scale": [nsim, nana],
                    "method": method,
                    "ok": result.ok,
                    "fidelity": result.fidelity,
                    "engaged": result.fidelity == "clustered+batch",
                    "batch_fallback": result.batch_fallback,
                })
    engaged = sum(1 for c in cells if c["engaged"])
    reasons = Counter(
        c["batch_fallback"] for c in cells
        if not c["engaged"] and c["batch_fallback"]
    )
    return {
        "workflow": workflow,
        "steps": steps,
        "cells": cells,
        "engaged": engaged,
        "declined": len(cells) - engaged,
        "decline_reasons": dict(reasons.most_common()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="batch_census.json")
    args = parser.parse_args(argv)
    report = census()
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"{report['engaged']} engaged / {report['declined']} declined "
          f"-> {args.output}")
    for reason, count in report["decline_reasons"].items():
        print(f"  {count:3d}x {reason}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
