"""Benchmark: regenerate Figure 10 (transport layer comparison)."""

import pytest

from repro.core.figures import fig10_transport


@pytest.mark.benchmark(group="fig10")
def test_fig10(run_once):
    table = run_once(fig10_transport)
    measured = [r for r in table.rows if r["rdma gain %"] is not None]
    assert len(measured) == 4  # 2 workflows x 2 (method, RDMA api) pairs

    # RDMA beats sockets everywhere (Finding 4).
    assert all(r["rdma gain %"] > 0 for r in measured)
    # The gain order of magnitude matches the paper's 3.8 - 17.3 %.
    assert all(0 < r["rdma gain %"] < 25 for r in measured)

    # Socket runs beyond (1024, 512) fail on descriptors; Table IV's
    # socket pool lets the same scale complete.
    plain_row = table.rows[-2]
    assert "FAIL(OutOfSockets)" in str(plain_row["socket"])
    pooled_row = table.rows[-1]
    assert isinstance(pooled_row["socket"], float)
