"""Benchmarks: regenerate Tables I-V."""

import pytest

from repro.core import (
    table1_build_configs,
    table2_workflows,
    table3_usability,
    table4_robustness,
    table5_findings,
)


@pytest.mark.benchmark(group="tables")
def test_table1(run_once):
    table = run_once(table1_build_configs)
    assert len(table.rows) == 5
    methods = " ".join(str(r["method"]) for r in table.rows)
    for name in ("DataSpaces", "MPI-IO", "Flexpath", "Decaf"):
        assert name in methods


@pytest.mark.benchmark(group="tables")
def test_table2(run_once):
    table = run_once(table2_workflows)
    by_name = {r["workflow"]: r for r in table.rows}
    assert by_name["lammps"]["bytes/proc @64"] == pytest.approx(20.48e6, rel=0.02)
    assert by_name["laplace"]["bytes/proc @64"] == 128 * 1024 * 1024
    assert "Configurable" in by_name["synthetic"]["output data"].capitalize()


@pytest.mark.benchmark(group="tables")
def test_table3(run_once):
    table = run_once(table3_usability)
    assert len(table.rows) == 13  # the paper's Table III row count
    for row in table.rows:
        assert row["LOC (ours)"] == pytest.approx(row["LOC (paper)"], rel=0.35)


@pytest.mark.benchmark(group="tables")
def test_table4(run_once):
    table = run_once(table4_robustness)
    assert len(table.rows) == 5
    for row in table.rows:
        assert row["failure reproduced"] == "yes", row
        assert row["resolve demonstrated"] == "yes", row


@pytest.mark.benchmark(group="tables")
def test_table5(run_once):
    table = run_once(lambda: table5_findings(verify=False))
    assert len(table.rows) == 8
    rows = {r["finding"]: r for r in table.rows}
    # Spot-check the matrix against the paper.
    assert rows["Finding 3"]["DataSpaces"] == "+"
    assert rows["Finding 3"]["Decaf"] == "-"
    assert rows["Finding 8"]["Decaf"] == "+"
