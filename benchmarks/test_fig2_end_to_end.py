"""Benchmark: regenerate Figure 2 (end-to-end times, both workflows).

The full (8192, 4096) sweep on both machines takes a while; the default
bench covers the scales where every paper effect is visible: MPI-IO's
linear growth, DataSpaces' N-to-1 rise on Titan, near-flat DIMES/Decaf,
and the failure cells at the largest scale.
"""

import pytest

from repro.core.figures import fig2_end_to_end

SCALES = [(32, 16), (512, 256), (2048, 1024), (4096, 2048), (8192, 4096)]


def _num(cell):
    return cell if isinstance(cell, float) else None


@pytest.mark.benchmark(group="fig2")
def test_fig2a_lammps(run_once):
    table = run_once(
        fig2_end_to_end,
        "lammps",
        machines=("titan", "cori"),
        scales=SCALES,
    )
    titan = [r for r in table.rows if r["machine"] == "titan"]
    cori = [r for r in table.rows if r["machine"] == "cori"]

    # MPI-IO grows ~linearly with scale; in-memory methods stay bounded.
    mpiio = [_num(r["mpiio"]) for r in titan]
    assert mpiio[-1] > mpiio[0] * 1.3
    dimes = [_num(r["dimes"]) for r in titan if _num(r["dimes"])]
    assert max(dimes) < 1.15 * min(dimes)

    # Flexpath's end-to-end grows by roughly the paper's ~60%.
    flex = [_num(r["flexpath"]) for r in titan]
    assert 1.3 < flex[-1] / flex[0] < 1.9

    # DataSpaces rises on Titan (N-to-1) and fails at (8192, 4096).
    ds = [r["dataspaces"] for r in titan]
    assert _num(ds[3]) > 1.4 * _num(ds[0])
    assert "FAIL" in str(ds[4])
    assert "FAIL" in str(titan[4]["dimes"])

    # On Cori, every RDMA method fails at (8192, 4096) via DRC.
    for method in ("dataspaces", "dimes", "flexpath"):
        assert "FAIL" in str(cori[4][method])

    # Cori compute baseline is slower by the core-speed ratio.
    assert cori[0]["sim-only"] > 1.4 * titan[0]["sim-only"]


@pytest.mark.benchmark(group="fig2")
def test_fig2b_laplace(run_once):
    table = run_once(
        fig2_end_to_end,
        "laplace",
        machines=("titan", "cori"),
        scales=SCALES[:4],
        methods=["mpiio", "flexpath", "dimes", "decaf"],
    )
    titan = [r for r in table.rows if r["machine"] == "titan"]
    # The compute-intensive Laplace workflow: Cori is slower throughout.
    cori = [r for r in table.rows if r["machine"] == "cori"]
    assert cori[0]["sim-only"] > titan[0]["sim-only"]
    # In-memory methods scale near-flat on the Laplace (matched) layout.
    dimes = [_num(r["dimes"]) for r in titan if _num(r["dimes"])]
    assert max(dimes) < 1.2 * min(dimes)
    mpiio = [_num(r["mpiio"]) for r in titan]
    assert mpiio[-1] > mpiio[0]
