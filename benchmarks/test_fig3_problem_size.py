"""Benchmark: regenerate Figure 3 (Laplace problem-size scaling)."""

import pytest

from repro.core.figures import fig3_problem_size
from repro.hpc import KB, MB


@pytest.mark.benchmark(group="fig3")
def test_fig3(run_once):
    table = run_once(
        fig3_problem_size,
        sizes=(512 * KB, 2 * MB, 8 * MB, 32 * MB, 128 * MB),
    )
    # End-to-end time grows proportionally with the problem size.
    flex = table.column("flexpath")
    assert all(isinstance(t, float) for t in flex)
    assert flex[-1] > 10 * flex[0]

    # The 128 MB point needed the paper's remediation for DataSpaces
    # and DIMES (out of RDMA memory otherwise).
    assert any("doubled staging servers" in n for n in table.notes)
    assert any("8 ranks/node" in n for n in table.notes)
    assert isinstance(table.rows[-1]["dataspaces"], float)
    assert isinstance(table.rows[-1]["dimes"], float)
