"""Benchmark: regenerate Figure 11 (Decaf server-count sensitivity)."""

import pytest

from repro.core.figures import fig11_decaf_servers


@pytest.mark.benchmark(group="fig11")
def test_fig11(run_once):
    table = run_once(fig11_decaf_servers, server_counts=(8, 16, 32, 64))
    mem = table.column("memory/server (MB)")
    e2e = table.column("end-to-end (s)")
    assert all(isinstance(m, float) for m in mem)

    # Paper: memory per server drops by ~83.5 % from 8 to 64 servers.
    drop = (mem[0] - mem[-1]) / mem[0]
    assert drop > 0.75

    # Paper: end-to-end shrinks by only ~5.5 % — insensitive.
    assert abs(e2e[0] - e2e[-1]) / e2e[0] < 0.10
