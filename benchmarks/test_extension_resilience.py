"""Extension benchmark: the cost of staging resilience (Section IV-C).

The paper notes no studied library constructs resilience for machine
failures.  This benchmark quantifies what factor-2 fragment replication
(the fix) costs: extra put time (one more transfer per fragment) and
doubled server memory — the price of surviving a staging-node crash.
"""

import pytest

from repro.hpc import Cluster, MB, TITAN
from repro.sim import Environment
from repro.staging import (
    StagingConfig,
    Variable,
    application_decomposition,
    make_library,
)


def run_replicated(replication_factor, steps=3):
    env = Environment()
    cluster = Cluster(env, TITAN)
    var = Variable("field", (8, 16, 125000))  # 1 MB per writer chunk scale
    config = StagingConfig(
        transport="ugni", replication_factor=replication_factor
    )
    lib = make_library(
        "dataspaces", cluster, nsim=16, nana=8, variable=var, steps=steps,
        num_servers=4, config=config,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )
    writes = application_decomposition(var, lib.topology.sim_actors, 1)
    reads = application_decomposition(var, lib.topology.ana_actors, 1)

    def writer(i):
        for step in range(steps):
            yield env.process(lib.put(i, writes[i], step))

    def reader(j):
        for step in range(steps):
            yield env.process(lib.get(j, reads[j], step))

    def main(env):
        yield env.process(lib.bootstrap())
        procs = [env.process(writer(i)) for i in range(lib.topology.sim_actors)]
        procs += [env.process(reader(j)) for j in range(lib.topology.ana_actors)]
        yield env.all_of(procs)

    env.process(main(env))
    env.run()
    staged = sum(s.memory.category_total("staged") for s in lib.servers)
    return env.now, lib.stats.put_time, staged


@pytest.mark.benchmark(group="extension")
def test_extension_replication_cost(benchmark):
    def compare():
        return run_replicated(1), run_replicated(2)

    (t1, put1, mem1), (t2, put2, mem2) = benchmark.pedantic(
        compare, iterations=1, rounds=1
    )
    print(f"\nreplication=1: end-to-end {t1 * 1e3:8.2f} ms, "
          f"staged {mem1 / MB:8.1f} MB")
    print(f"replication=2: end-to-end {t2 * 1e3:8.2f} ms, "
          f"staged {mem2 / MB:8.1f} MB")
    # Resilience costs real resources: more put work, ~2x server memory.
    assert put2 > put1
    assert mem2 == pytest.approx(2 * mem1, rel=0.01)
    # ...but stays a bounded overhead on the whole run.
    assert t2 < 2 * t1
