#!/usr/bin/env python3
"""Figure 8/9 illustrated: why a layout mismatch causes N-to-1 herding.

Prints the per-processor server access plans for both layouts (the
Figure 8 diagram as text), then measures the synthetic workflow both
ways (Figure 9) and reports the speedup of matching the decomposition
dimension to the processor-scaling dimension.

Run:  python examples/data_layout.py
"""

from repro.core.figures import fig8_layout_mapping, fig9_layout_impact
from repro.staging import (
    access_plan,
    application_decomposition,
    is_n_to_one,
    staging_partition,
)
from repro.workflows import synthetic_variable


def explain(nprocs: int = 4, num_servers: int = 4) -> None:
    for layout, axis in (("mismatched", 1), ("matched", 2)):
        var = synthetic_variable(nprocs, axis_layout=layout)
        partition = staging_partition(var, num_servers)
        regions = application_decomposition(var, nprocs, axis)
        plans = [access_plan(r, partition, num_servers) for r in regions]
        print(f"\n{layout.upper()} layout — global dims {var.dims}:")
        print(f"  staging partition: {len(partition)} sub-regions along the "
              f"longest dimension, mapped to {num_servers} servers sequentially")
        for proc, plan in enumerate(plans):
            order = " -> ".join(f"server{s}" for s, _ in plan)
            print(f"  S-{proc} accesses: {order}")
        if is_n_to_one(plans, num_servers):
            print("  => every processor starts at the SAME server: "
                  "N-to-1 herding (Figure 8a)")
        else:
            print("  => processors spread across all servers: "
                  "N-to-N access (Figure 8b)")


def main() -> None:
    print("=" * 70)
    print("Figure 8: data layout in the staging area")
    print("=" * 70)
    explain()

    print()
    print("=" * 70)
    print("Figure 9: measured impact on the synthetic workflow")
    print("=" * 70)
    table = fig9_layout_impact(nsim=256, nana=128, steps=5)
    print(table.render())


if __name__ == "__main__":
    main()
