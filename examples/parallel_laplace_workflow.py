#!/usr/bin/env python3
"""The fully parallel Laplace + MTA workflow, end to end.

The most faithful small-scale reproduction artifact in this repository:

* the simulation is the real *distributed* Jacobi solver — each MPI
  rank relaxes its row slab, exchanges halo rows with its neighbors
  through the simulated interconnect and synchronizes convergence with
  MPI_Allreduce (``repro.kernels.laplace_mpi``);
* every K sweeps each rank stages its slab into **DataSpaces**
  (put/get over DART with the version-window lock);
* the analytics ranks pull their regions and run the real parallel
  moment analysis, merging partial accumulators exactly.

Run:  python examples/parallel_laplace_workflow.py
"""

import numpy as np

from repro.hpc import Cluster, TITAN
from repro.kernels import (
    LaplaceSimulation,
    MomentAccumulator,
    ParallelLaplace,
    combine_slab_moments,
)
from repro.mpi import Communicator
from repro.sim import Environment
from repro.staging import Variable, application_decomposition, make_library

GRID = (48, 64)
NSIM, NANA = 4, 2
SWEEPS_PER_STAGE = 40
STAGES = 3


def main() -> None:
    env = Environment()
    cluster = Cluster(env, TITAN)

    # The simulation communicator: one rank per node.
    sim_nodes = [cluster.node(i) for i in range(NSIM)]
    comm = Communicator(cluster, sim_nodes, name="laplace")
    solvers = {
        i: ParallelLaplace(comm.rank(i), GRID, top=100.0) for i in range(NSIM)
    }

    var = Variable("field", GRID)
    library = make_library(
        "dataspaces", cluster, nsim=NSIM, nana=NANA, variable=var,
        steps=STAGES,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )
    reads = application_decomposition(var, library.topology.ana_actors, 0)
    partials = {}

    def simulation(i):
        solver = solvers[i]
        for stage in range(STAGES):
            for _ in range(SWEEPS_PER_STAGE):
                yield from solver.step()  # halo exchange + relax + allreduce
            from repro.staging import Region

            region = Region((solver.start, 0), (solver.stop, GRID[1]))
            yield env.process(
                library.put(i, region, stage, solver.local.copy())
            )

    def analytics(j):
        for stage in range(STAGES):
            nbytes, slab = yield env.process(library.get(j, reads[j], stage))
            partials.setdefault(stage, []).append(
                MomentAccumulator().add_array(slab)
            )

    def workflow(env):
        yield env.process(library.bootstrap())
        ranks = [env.process(simulation(i)) for i in range(NSIM)]
        ranks += [env.process(analytics(j)) for j in range(NANA)]
        yield env.all_of(ranks)

    env.process(workflow(env))
    env.run()

    print("Distributed Jacobi + DataSpaces + parallel MTA on simulated Titan")
    print(f"grid {GRID}, {NSIM} solver ranks, {NANA} analytics ranks, "
          f"{STAGES} stages x {SWEEPS_PER_STAGE} sweeps\n")
    for stage in sorted(partials):
        combined = combine_slab_moments(partials[stage])
        print(f"stage {stage}: mean={combined.mean:8.4f}  "
              f"variance={combined.variance:10.4f}  "
              f"sweeps so far={SWEEPS_PER_STAGE * (stage + 1)}")

    # Cross-validate against the serial reference at equal sweep count.
    serial = LaplaceSimulation(GRID, top=100.0)
    serial.step(SWEEPS_PER_STAGE * STAGES)
    reference = MomentAccumulator().add_array(serial.grid)
    final = combine_slab_moments(partials[STAGES - 1])
    assert abs(final.mean - reference.mean) < 1e-9, "parallel != serial"
    print("\nparallel moments == serial reference (exact)")
    print(f"simulated wall-clock: {env.now * 1e3:.2f} ms "
          f"(halo exchanges + staging + RPCs)")


if __name__ == "__main__":
    main()
