#!/usr/bin/env python3
"""Finding 4 in action: RDMA vs sockets vs shared memory.

Runs the LAMMPS workflow over every transport each method supports on
both machines and prints a comparison matrix, including the failure
modes (socket-descriptor exhaustion at scale, shared-memory scheduler
restrictions).

Run:  python examples/transport_comparison.py
"""

from repro.workflows import run_coupled

SCALE = (512, 256)
CASES = [
    # (method, transport, machine, shared, note)
    ("dataspaces", "ugni", "titan", False, "proprietary low-level RDMA"),
    ("dataspaces", "tcp", "titan", False, "sockets over Gemini"),
    ("dimes", "ugni", "titan", False, "memory-to-memory RDMA"),
    ("flexpath", "nnti", "titan", False, "EVPath over NNTI"),
    ("flexpath", "tcp", "titan", False, "EVPath over TCP"),
    ("decaf", "mpi", "titan", False, "MPI message passing"),
    ("flexpath", "shm", "titan", True, "shared memory (refused by Titan)"),
    ("flexpath", "nnti", "cori", False, "dedicated nodes on Cori"),
]


def main() -> None:
    print(f"LAMMPS workflow at {SCALE}, 5 steps\n")
    header = f"{'method':12s} {'transport':9s} {'machine':7s} {'mode':9s} {'end-to-end':>12s}  note"
    print(header)
    print("-" * len(header))
    shared_topo = dict(sim_ranks_per_node=2, ana_ranks_per_node=1)
    for method, transport, machine, shared, note in CASES:
        result = run_coupled(
            machine, "lammps", method,
            nsim=SCALE[0], nana=SCALE[1],
            transport=transport, shared_nodes=shared,
            topology_overrides=shared_topo if shared else None,
        )
        if result.ok:
            cell = f"{result.end_to_end:9.1f} s"
        else:
            cell = "FAILED"
            note = result.failure.split(":")[0]
        mode = "shared" if shared else "dedicated"
        print(f"{method:12s} {transport:9s} {machine:7s} {mode:9s} {cell:>12s}  {note}")

    print(
        "\nsocket exhaustion beyond (1024,512) "
        "(the Figure 10 failure):"
    )
    big = run_coupled("titan", "lammps", "dataspaces",
                      nsim=2048, nana=1024, transport="tcp")
    print(f"  dataspaces/tcp at (2048,1024): {big.failure or big.end_to_end}")


if __name__ == "__main__":
    main()
