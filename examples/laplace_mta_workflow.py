#!/usr/bin/env python3
"""The Laplace + MTA workflow of Table II through a Decaf dataflow.

A real Jacobi solver relaxes Laplace's equation in a rectangle; every
few sweeps the field is staged through a **Decaf** graph
(producer -> dflow -> consumer over MPI, 'count' redistribution) on a
simulated Titan; the analytics ranks each compute partial central
moments of their slab and combine them exactly — the parallel n-th
moment turbulence analysis (MTA).

Run:  python examples/laplace_mta_workflow.py
"""

import numpy as np

from repro.hpc import Cluster, MB, TITAN
from repro.kernels import (
    LaplaceSimulation,
    MomentAccumulator,
    combine_slab_moments,
)
from repro.sim import Environment
from repro.staging import Variable, application_decomposition, make_library

STEPS = 3
SWEEPS_PER_STAGE = 60
GRID = (64, 128)


def main() -> None:
    env = Environment()
    cluster = Cluster(env, TITAN)

    sim = LaplaceSimulation(GRID, top=100.0)
    var = Variable("field", dims=GRID)

    library = make_library(
        "decaf", cluster, nsim=4, nana=4, variable=var, steps=STEPS,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )
    topo = library.topology
    write_regions = application_decomposition(var, topo.sim_actors, axis=1)
    read_regions = application_decomposition(var, topo.ana_actors, axis=1)
    partials = {}
    # Rank 0 advances the (shared) solver; a per-stage event hands the
    # fresh snapshot to every producer so no rank stages a stale grid.
    snapshots = {}
    stage_ready = [env.event() for _ in range(STEPS)]

    def producer(rank):
        for step in range(STEPS):
            if rank == 0:
                sim.step(SWEEPS_PER_STAGE)  # the real Jacobi relaxation
                snapshots[step] = sim.snapshot()
                stage_ready[step].succeed()
            else:
                yield stage_ready[step]
            block = snapshots[step][write_regions[rank].local_slices(var.bounds)]
            yield env.process(
                library.put(rank, write_regions[rank], step, block)
            )

    def consumer(rank):
        for step in range(STEPS):
            nbytes, slab = yield env.process(
                library.get(rank, read_regions[rank], step)
            )
            acc = MomentAccumulator().add_array(slab)
            partials.setdefault(step, []).append(acc)

    def workflow(env):
        yield env.process(library.bootstrap())
        ranks = [env.process(producer(i)) for i in range(topo.sim_actors)]
        ranks += [env.process(consumer(j)) for j in range(topo.ana_actors)]
        yield env.all_of(ranks)

    env.process(workflow(env))
    env.run()

    print("Laplace (Jacobi) + MTA through a Decaf dataflow on simulated Titan")
    print("Decaf graph:", {n: (d.nprocs, d.role) for n, d in library.graph.nodes.items()})
    print()
    for step in sorted(partials):
        combined = combine_slab_moments(partials[step])
        # Cross-check the distributed result against a direct global pass.
        direct = MomentAccumulator().add_array(sim.grid) if step == STEPS - 1 else None
        print(
            f"stage {step}: mean={combined.mean:8.4f} "
            f"m2={combined.central_moment(2):10.4f} "
            f"m3={combined.central_moment(3):12.2f} "
            f"kurtosis={combined.kurtosis:6.3f}"
        )
        if direct is not None:
            assert abs(combined.mean - direct.mean) < 1e-9
            assert np.isclose(combined.m2, direct.m2)
            print("         distributed moments == single-pass global moments")
    print(f"\nJacobi iterations performed: {sim.iterations}")
    print(f"server (dflow) peak memory : {max(library.server_memory_peaks()) / MB:.1f} MB")


if __name__ == "__main__":
    main()
