#!/usr/bin/env python3
"""Visualize the coupling: ASCII Gantt charts of workflow activity.

Renders what each simulation/analytics actor was doing over time for
three contrasting configurations:

1. Flexpath (queue_size=1) — tight pipelining, analytics hides behind
   the simulation;
2. DataSpaces with the mismatched LAMMPS layout — watch the put/get
   stretches grow (the Finding 3 serialization);
3. MPI-IO — the read-after-write coupling through the filesystem.

Run:  python examples/workflow_timeline.py
"""

from repro.workflows import ActivityTrace, run_coupled


def show(title: str, **kwargs) -> None:
    trace = ActivityTrace()
    result = run_coupled(trace=trace, **kwargs)
    print("=" * 72)
    print(title)
    print("=" * 72)
    if not result.ok:
        print(f"FAILED: {result.failure}\n")
        return
    print(trace.gantt(width=64))
    sim_busy = trace.busy_fraction("sim0")
    ana_busy = trace.busy_fraction("ana0")
    print(
        f"\nend-to-end {result.end_to_end:.1f}s | "
        f"sim busy {sim_busy:4.0%} | analytics busy {ana_busy:4.0%} | "
        f"staging {result.staging_time:.1f}s aggregate\n"
    )


def main() -> None:
    common = dict(machine="titan", workflow="lammps", nsim=64, nana=32, steps=4)
    show("1. Flexpath (pub/sub, queue_size=1)", method="flexpath", **common)
    show("2. DataSpaces (mismatched layout, N-to-1 herding)",
         method="dataspaces", **common)
    show("3. MPI-IO (post-processing through Lustre)", method="mpiio", **common)


if __name__ == "__main__":
    main()
