#!/usr/bin/env python3
"""Coupling through the ADIOS framework, configured by XML.

The usability story of Section IV-A: the application code only calls
adios_open/write/read/close; switching the staging method (DATASPACES
-> FLEXPATH -> MPI) is a one-word change in the XML, not a code change.
This example runs the *same* coupled code under three methods and
round-trips real data through each, also demonstrating the BP
self-describing format on the side.

Run:  python examples/adios_xml_workflow.py
"""

import numpy as np

from repro.adios import Adios, BpReader, BpWriter
from repro.hpc import Cluster, TITAN
from repro.sim import Environment
from repro.staging import application_decomposition

XML_TEMPLATE = """
<adios-config>
  <adios-group name="field">
    <var name="u" type="double" dimensions="32,nprocs,64"/>
  </adios-group>
  <method group="field" method="{method}"/>
</adios-config>
"""

NSIM, NANA, STEPS = 4, 2, 2


def run_one(method: str) -> float:
    env = Environment()
    cluster = Cluster(env, TITAN)
    adios = Adios(XML_TEMPLATE.format(method=method), cluster,
                  nsim=NSIM, nana=NANA, steps=STEPS)
    var = adios.variable("field", "u")
    library = adios.library_for("field", "u")
    wregions = application_decomposition(var, library.topology.sim_actors, 1)
    rregions = application_decomposition(var, library.topology.ana_actors, 1)
    rng = np.random.default_rng(3)
    truth = rng.random(var.dims)
    checked = []

    def writer(rank):
        fd = adios.open("field", "w", rank)
        for step in range(STEPS):
            block = truth[wregions[rank].local_slices(var.bounds)] * (step + 1)
            yield from fd.write("u", wregions[rank], step, block)
        yield from fd.close()

    def reader(rank):
        fd = adios.open("field", "r", rank)
        for step in range(STEPS):
            nbytes, data = yield from fd.read("u", rregions[rank], step)
            expected = truth[rregions[rank].local_slices(var.bounds)] * (step + 1)
            checked.append(np.allclose(data, expected))
        yield from fd.close()

    def main(env):
        yield env.process(adios.bootstrap("field", "u"))
        procs = [env.process(writer(i)) for i in range(library.topology.sim_actors)]
        procs += [env.process(reader(j)) for j in range(library.topology.ana_actors)]
        yield env.all_of(procs)

    env.process(main(env))
    env.run()
    assert checked and all(checked), f"{method}: data mismatch"
    return env.now


def demo_bp() -> None:
    """The self-describing BP buffer ADIOS writes to disk."""
    writer = BpWriter("field", rank=0)
    payload = np.linspace(0, 1, 12).reshape(3, 4)
    writer.write("u", payload, global_dims=(3, 16), offsets=(0, 4))
    packed = writer.pack()
    reader = BpReader(packed)
    record = reader.records[0]
    assert np.allclose(reader.read("u"), payload)
    print(
        f"BP buffer: {len(packed)} bytes, self-describing "
        f"(var {record.name!r}, global {record.global_dims}, "
        f"offsets {record.offsets}) — decoded without a schema"
    )


def main() -> None:
    print("Same application code, three staging methods via ADIOS XML:\n")
    for method in ("DATASPACES", "FLEXPATH", "MPI"):
        elapsed = run_one(method)
        print(f"  method={method:11s} -> simulated time {elapsed * 1e3:9.3f} ms, data verified")
    print()
    demo_bp()


if __name__ == "__main__":
    main()
