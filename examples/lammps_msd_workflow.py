#!/usr/bin/env python3
"""The LAMMPS + MSD workflow of Table II, end to end with real physics.

A real Lennard-Jones melt (velocity-Verlet MD) runs as the simulation;
each dump is staged through **Flexpath** (publish/subscribe, staged at
the writers) on a simulated Cori; the analytics side reassembles the
atom positions and computes the real mean squared displacement — the
melting signature the paper's LAMMPS workflow measures.

Run:  python examples/lammps_msd_workflow.py
"""

import numpy as np

from repro.hpc import CORI, Cluster, fmt_bytes
from repro.kernels import LJSimulation, mean_squared_displacement
from repro.sim import Environment
from repro.staging import Variable, application_decomposition, make_library

STEPS = 4
MD_STEPS_PER_DUMP = 15


def main() -> None:
    env = Environment()
    cluster = Cluster(env, CORI)

    # One real LJ simulation, its atoms partitioned over 4 writer ranks.
    lj = LJSimulation(cells=3, temperature=3.0, seed=7)
    natoms = lj.natoms
    var = Variable("atoms", dims=(5, 4, natoms // 4))

    library = make_library(
        "flexpath", cluster, nsim=4, nana=2, variable=var, steps=STEPS,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )
    topo = library.topology
    write_regions = application_decomposition(var, topo.sim_actors, axis=1)
    read_regions = application_decomposition(var, topo.ana_actors, axis=1)
    reference = lj.unwrapped.copy()
    msd_by_step = {}
    # Rank 0 integrates the shared MD state; per-dump events hand the
    # snapshot to the other writers so nobody stages a stale frame.
    snapshots = {}
    dump_ready = [env.event() for _ in range(STEPS)]

    def simulation(rank):
        for step in range(STEPS):
            if rank == 0:
                lj.step(MD_STEPS_PER_DUMP)  # the real MD integration
                snapshots[step] = lj.snapshot()  # (5, natoms)
                dump_ready[step].succeed()
            else:
                yield dump_ready[step]
            block = snapshots[step].reshape(5, 4, natoms // 4)[
                :, rank : rank + 1, :
            ]
            yield env.process(
                library.put(rank, write_regions[rank], step, block)
            )

    def analytics(rank):
        for step in range(STEPS):
            nbytes, data = yield env.process(
                library.get(rank, read_regions[rank], step)
            )
            # Reassemble this rank's share of atom positions (x, y, z).
            atoms = data.reshape(5, -1)[:3].T
            share = reference.reshape(4, natoms // 4, 3)
            lo = rank * (4 // topo.ana_actors)
            hi = lo + (4 // topo.ana_actors)
            ref_share = share[lo:hi].reshape(-1, 3)
            msd = mean_squared_displacement(atoms, ref_share)
            msd_by_step.setdefault(step, []).append((rank, msd, nbytes))

    def workflow(env):
        yield env.process(library.bootstrap())
        ranks = [env.process(simulation(i)) for i in range(topo.sim_actors)]
        ranks += [env.process(analytics(j)) for j in range(topo.ana_actors)]
        yield env.all_of(ranks)

    env.process(workflow(env))
    env.run()

    print("LAMMPS (LJ melt) + MSD through Flexpath on simulated Cori")
    print(f"atoms: {natoms}, dumps: {STEPS}, MD steps/dump: {MD_STEPS_PER_DUMP}\n")
    last = None
    for step in sorted(msd_by_step):
        msd = float(np.mean([m for _, m, _ in msd_by_step[step]]))
        moved = fmt_bytes(sum(n for _, _, n in msd_by_step[step]))
        print(f"dump {step}: MSD = {msd:10.4f}   (staged {moved})")
        if last is not None:
            assert msd >= last * 0.5, "MSD should trend upward while melting"
        last = msd
    print(f"\nfinal temperature: {lj.temperature:.2f} (melting: MSD grows)")
    print(f"simulated staging time: {library.stats.staging_time * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
