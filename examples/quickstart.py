#!/usr/bin/env python3
"""Quickstart: couple a writer and a reader through DataSpaces.

Boots a simulated Titan, stages a real numpy array from 8 simulation
ranks into the DataSpaces servers and reads it back (reassembled) from
4 analytics ranks, then prints timing/memory statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.hpc import Cluster, MB, TITAN, fmt_bytes
from repro.sim import Environment
from repro.staging import Variable, application_decomposition, make_library


def main() -> None:
    env = Environment()
    cluster = Cluster(env, TITAN)

    # A global 2D field, decomposed over 8 writers along dimension 0.
    var = Variable("field", dims=(64, 4096))
    library = make_library(
        "dataspaces", cluster, nsim=8, nana=4, variable=var, steps=2,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )
    topo = library.topology
    write_regions = application_decomposition(var, topo.sim_actors, axis=0)
    read_regions = application_decomposition(var, topo.ana_actors, axis=0)

    rng = np.random.default_rng(2020)
    truth = rng.random(var.dims)
    collected = {}

    def writer(rank):
        for step in range(2):
            block = truth[write_regions[rank].local_slices(var.bounds)] + step
            yield env.process(library.put(rank, write_regions[rank], step, block))

    def reader(rank):
        for step in range(2):
            nbytes, data = yield env.process(
                library.get(rank, read_regions[rank], step)
            )
            collected[(rank, step)] = (nbytes, data)

    def workflow(env):
        yield env.process(library.bootstrap())
        ranks = [env.process(writer(i)) for i in range(topo.sim_actors)]
        ranks += [env.process(reader(j)) for j in range(topo.ana_actors)]
        yield env.all_of(ranks)

    env.process(workflow(env))
    env.run()

    errors = 0
    for (rank, step), (nbytes, data) in sorted(collected.items()):
        expected = truth[read_regions[rank].local_slices(var.bounds)] + step
        ok = np.allclose(data, expected)
        errors += not ok
        print(
            f"reader {rank} step {step}: {fmt_bytes(nbytes)} "
            f"{'OK' if ok else 'MISMATCH'}"
        )

    stats = library.stats
    print(f"\nsimulated time      : {env.now * 1000:.3f} ms")
    print(f"bytes staged        : {fmt_bytes(stats.bytes_staged)}")
    print(f"bytes retrieved     : {fmt_bytes(stats.bytes_retrieved)}")
    print(f"puts / gets         : {stats.puts} / {stats.gets}")
    for server in library.servers:
        print(
            f"server {server.index} peak memory: "
            f"{server.memory.peak / MB:.1f} MB "
            f"(breakdown: { {k: f'{v / MB:.1f} MB' for k, v in server.memory.breakdown().items()} })"
        )
    assert errors == 0, "data verification failed"
    print("\nquickstart complete: all regions verified.")


if __name__ == "__main__":
    main()
