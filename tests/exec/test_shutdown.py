"""Graceful SIGINT/SIGTERM shutdown of a live worker pool.

The pool installs signal handlers only on the main thread, so the
scenario runs in a real subprocess: start a pool on slow tasks, signal
it mid-run, and assert the drain contract — in-flight work finished,
:class:`~repro.exec.pool.PoolInterrupted` carried the partial outcomes
out, no spawn process was orphaned.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

CHILD = """
import sys

from repro.exec.plan import PlannedTask
from repro.exec.pool import PoolInterrupted, WorkerPool


def spec(n, nap):
    return dict(machine="titan", workflow="lammps", method=None,
                nsim=n, nana=max(1, n // 2), steps=1, __sleep__=nap)


def main():
    tasks = [
        PlannedTask(key=f"k{i}", spec=spec(2 + i, 1.0),
                    experiments=["t"], refs=1)
        for i in range(12)
    ]
    # batch_max=1 keeps at most one task in flight per worker, so the
    # signal always finds campaign left to cut short
    pool = WorkerPool(jobs=2, drain_seconds=20.0, batch_max=1)
    print("READY", flush=True)
    try:
        outcomes = pool.run(tasks)
    except PoolInterrupted as exc:
        done = sum(1 for o in exc.outcomes.values() if o.status == "ok")
        pending = sum(
            1 for o in exc.outcomes.values() if o.status == "pending"
        )
        print(f"INTERRUPTED signum={exc.signum} done={done} "
              f"pending={pending}", flush=True)
        return 0
    print(f"COMPLETED {len(outcomes)}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
"""


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_inflight_then_interrupts(tmp_path, signum):
    script = tmp_path / "pool_child.py"
    script.write_text(CHILD)
    env = dict(os.environ, PYTHONPATH=SRC)
    child = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env,
    )
    try:
        assert child.stdout.readline().strip() == "READY"
        # let the workers spawn and pin a task in flight, then signal;
        # 12 x 1s of task sleep leaves plenty of campaign to cut short
        time.sleep(3.0)
        child.send_signal(signum)
        out, err = child.communicate(timeout=60)
    except BaseException:
        child.kill()
        child.communicate()
        raise
    assert child.returncode == 0, err
    marker = out.strip().splitlines()[-1]
    assert marker.startswith(f"INTERRUPTED signum={signum}"), out
    # the drain let in-flight tasks finish instead of killing them,
    # and stopped assigning new ones: some done, some never started
    fields = dict(
        part.split("=") for part in marker.split()[1:]
    )
    assert int(fields["done"]) >= 1
    assert int(fields["pending"]) >= 1
    # graceful means no orphans: the pool's spawn workers died with it
    time.sleep(0.5)
    assert child.poll() is not None
