"""Worker pool: parallel correctness, crash retry, quarantine, cache."""

import os

import pytest

from repro.core import runcache
from repro.exec.plan import PlannedTask
from repro.exec.pool import WorkerPool, effective_jobs
from repro.workflows import run_coupled

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(autouse=True)
def clean_cache():
    runcache.clear()
    yield
    runcache.clear()


def baseline_spec(nsim, **extra):
    """A compute-only baseline: the cheapest real simulation."""
    spec = dict(machine="titan", workflow="lammps", method=None,
                nsim=nsim, nana=max(1, nsim // 2), steps=1)
    spec.update(extra)
    return spec


def task(key, spec):
    return PlannedTask(key=key, spec=spec, experiments=["t"], refs=1)


class TestEffectiveJobs:
    def test_clamps_to_cpu_count(self):
        cores = os.cpu_count() or 1
        assert effective_jobs(10 * cores + 1) == cores

    def test_small_requests_pass_through(self):
        assert effective_jobs(1) == 1

    def test_never_below_one(self):
        assert effective_jobs(0) == 1
        assert effective_jobs(-3) == 1

    def test_pool_records_effective(self):
        pool = WorkerPool(jobs=10 * (os.cpu_count() or 1))
        assert pool.effective == (os.cpu_count() or 1)


class TestPoolExecution:
    def test_parallel_results_match_serial(self):
        specs = {f"k{n}": baseline_spec(n) for n in (2, 3, 4)}
        serial = {}
        for key, spec in specs.items():
            serial[key] = run_coupled(**spec).end_to_end
        runcache.clear()

        pool = WorkerPool(jobs=2)
        outcomes = pool.run([task(k, s) for k, s in specs.items()])
        assert all(o.status == "ok" for o in outcomes.values())
        for key, outcome in outcomes.items():
            assert outcome.result.end_to_end == serial[key]
            assert outcome.result.library is None
            assert outcome.attempts == 1

    def test_empty_task_list(self):
        assert WorkerPool(jobs=2).run([]) == {}

    def test_crash_is_retried_then_succeeds(self):
        events = []
        pool = WorkerPool(jobs=2, backoff_base=0.05, progress=events.append)
        outcomes = pool.run([
            task("crashy", baseline_spec(2, __crash__=1)),
            task("fine", baseline_spec(3)),
        ])
        crashy = outcomes["crashy"]
        assert crashy.status == "ok"
        assert crashy.attempts == 2
        assert crashy.retried
        assert crashy.result.end_to_end > 0
        assert outcomes["fine"].status == "ok"
        assert any(e["status"] == "retrying" for e in events)

    def test_poison_task_is_quarantined_not_fatal(self):
        pool = WorkerPool(jobs=2, max_attempts=2, backoff_base=0.05)
        outcomes = pool.run([
            task("poison", baseline_spec(2, __crash__=True)),
            task("fine", baseline_spec(3)),
        ])
        poison = outcomes["poison"]
        assert poison.status == "quarantined"
        assert poison.attempts == 2
        assert poison.result is None
        assert "died" in poison.error
        # the campaign survived: the healthy task completed
        assert outcomes["fine"].status == "ok"

    def test_worker_exception_is_retried_then_quarantined(self):
        bad = dict(machine="titan", workflow="lammps", method=None,
                   nsim=2, nana=1, steps=1, no_such_kwarg=True)
        pool = WorkerPool(jobs=1, max_attempts=2, backoff_base=0.05)
        outcomes = pool.run([task("bad", bad)])
        assert outcomes["bad"].status == "quarantined"
        assert outcomes["bad"].attempts == 2
        assert "TypeError" in outcomes["bad"].error

    def test_workers_share_the_disk_cache(self, tmp_path):
        spec = baseline_spec(2)
        first = WorkerPool(jobs=1, cache_dir=str(tmp_path)).run(
            [task("k", spec)]
        )["k"]
        assert not first.cache_hit
        assert list(tmp_path.glob("*.pkl"))
        second = WorkerPool(jobs=1, cache_dir=str(tmp_path)).run(
            [task("k", spec)]
        )["k"]
        assert second.cache_hit
        assert second.result.end_to_end == first.result.end_to_end
