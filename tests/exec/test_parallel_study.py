"""End-to-end: parallel study == serial study, byte for byte."""

import json
import os

import pytest

from repro.core import runcache
from repro.core.export import to_csv, to_json
from repro.core.study import Study
from repro.exec import execute_parallel
from repro.__main__ import main as cli_main

#: cheap but real: fig6 simulates 8 coupled points, fig8 is analytic
SUBSET = ["fig6", "fig8"]


@pytest.fixture(autouse=True)
def clean_cache():
    runcache.clear()
    yield
    runcache.clear()


def tables_bytes(study):
    return {
        ident: (to_csv(t), to_json(t)) for ident, t in study.results.items()
    }


class TestParallelStudy:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_byte_identical_to_serial(self, jobs):
        serial = Study()
        serial.run(only=SUBSET)
        expected = tables_bytes(serial)
        runcache.clear()

        parallel = Study(jobs=jobs)
        parallel.run(only=SUBSET)
        assert tables_bytes(parallel) == expected
        assert parallel.run_report is not None
        assert parallel.run_report.executed > 0
        assert parallel.run_report.quarantined == []

    def test_replay_hits_the_seeded_cache(self):
        study = Study(jobs=2)
        study.run(only=["fig6"])
        # every point the workers computed was replayed from memory
        report = study.run_report
        assert report.rounds[0]["planned_tasks"] == report.executed
        assert runcache.CACHE.hits >= report.executed

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown experiment ids"):
            Study().run(only=["fig99"])

    def test_report_written(self, tmp_path):
        path = str(tmp_path / "run_report.json")
        execute_parallel(
            {"fig8": Study().experiments()["fig8"]}, jobs=2, report_path=path
        )
        payload = json.loads(open(path).read())
        assert payload["schema"] == 5
        assert payload["jobs"] == 2
        assert payload["requested_jobs"] == 2
        # clamped to os.cpu_count() on small hosts, never above request
        assert 1 <= payload["effective_jobs"] <= 2
        assert payload["quarantined"] == 0
        assert isinstance(payload["tasks"], list)
        assert all(
            isinstance(r["batch_sizes"], list) for r in payload["rounds"]
        )
        # schema 4: the run cache's counters ride along
        cache = payload["runcache"]
        assert set(cache) >= {"hits", "misses", "stores", "seeds",
                              "disk_hits", "entries"}
        assert all(isinstance(v, int) for v in cache.values())
        # schema 5: so do the checkpoint-fork counters
        fork = payload["forkpoint"]
        assert set(fork) >= {"snapshots_taken", "forks_served",
                             "fork_declines"}
        assert isinstance(fork["snapshots_taken"], int)
        assert isinstance(fork["forks_served"], int)
        assert isinstance(fork["fork_declines"], dict)


class TestCliFlags:
    def test_study_list_flag(self, capsys):
        assert cli_main(["study", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "conclusions" in out

    def test_only_flag_comma_separated(self, capsys):
        assert cli_main(["study", "--only", "fig4,fig8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 8" in out
        assert "Figure 6" not in out

    def test_only_flag_unknown_id_fails(self, capsys):
        assert cli_main(["study", "--only", "fig99"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().out

    def test_jobs_flag_with_export_writes_report(self, tmp_path, capsys):
        export = str(tmp_path / "out")
        assert cli_main(
            ["study", "fig8", "--jobs", "2", "--export", export]
        ) == 0
        out = capsys.readouterr().out
        assert "parallel executor:" in out
        assert os.path.exists(os.path.join(export, "run_report.json"))
        assert os.path.exists(os.path.join(export, "fig8.csv"))
