"""Work-plan construction: enumeration, dedup, placeholders, errors."""

import dataclasses

import pytest

from repro.core import runcache
from repro.exec.plan import build_plan, placeholder_result
from repro.hpc.machines import get_machine
from repro.workflows import driver, run_coupled


@pytest.fixture(autouse=True)
def clean_cache():
    runcache.clear()
    yield
    runcache.clear()


def tiny(method="dataspaces", **kw):
    kw.setdefault("machine", "titan")
    kw.setdefault("workflow", "lammps")
    kw.setdefault("nsim", 8)
    kw.setdefault("nana", 4)
    kw.setdefault("steps", 1)
    return run_coupled(method=method, **kw)


class TestBuildPlan:
    def test_enumerates_without_simulating(self):
        seen = []
        orig_execute = driver._execute

        def spying_execute(*args, **kwargs):
            seen.append(1)
            return orig_execute(*args, **kwargs)

        driver._execute = spying_execute
        try:
            plan = build_plan({"e1": lambda: tiny()})
        finally:
            driver._execute = orig_execute
        assert not seen  # nothing simulated
        assert len(plan.tasks) == 1
        assert plan.total_refs == 1

    def test_shared_points_collapse_to_one_task(self):
        plan = build_plan({
            "e1": lambda: (tiny(), tiny(method="dimes")),
            "e2": lambda: tiny(),  # same config as e1's first call
        })
        assert len(plan.tasks) == 2
        assert plan.total_refs == 3
        assert plan.deduped_refs == 1
        shared = next(t for t in plan.tasks if t.spec["method"] == "dataspaces")
        assert shared.experiments == ["e1", "e2"]
        assert shared.refs == 2

    def test_warm_cache_entries_become_hits_not_tasks(self):
        real = tiny()  # simulated for real, cached
        plan = build_plan({"e1": lambda: tiny()})
        assert plan.tasks == []
        assert plan.cache_hits == 1
        # and planning handed back the real cached result object
        assert real.ok

    def test_uncacheable_calls_are_unplanned(self):
        spec = dataclasses.replace(get_machine("titan"))  # ad-hoc spec
        plan = build_plan({
            "e1": lambda: run_coupled(machine=spec, method=None, nsim=4, nana=2)
        })
        assert plan.tasks == []
        assert plan.unplanned == 1

    def test_planning_does_not_poison_the_cache(self):
        build_plan({"e1": lambda: tiny()})
        assert runcache.CACHE._memory == {}
        # the real run afterwards actually simulates
        result = tiny()
        assert result.ok and result.end_to_end > 1.0

    def test_experiment_error_keeps_partial_plan(self):
        def bad():
            tiny()
            raise RuntimeError("cannot digest placeholders")

        plan = build_plan({"bad": bad, "good": lambda: tiny(method="dimes")})
        assert "bad" in plan.errors
        assert "RuntimeError" in plan.errors["bad"]
        assert len(plan.tasks) == 2  # the point before the raise is kept

    def test_big_tasks_first(self):
        plan = build_plan({
            "small": lambda: tiny(),
            "big": lambda: tiny(nsim=64, nana=32, steps=2),
        })
        assert plan.tasks[0].spec["nsim"] == 64

    def test_recorder_always_uninstalled(self):
        def bad():
            raise RuntimeError("boom")

        build_plan({"bad": bad})
        assert driver._PLAN_RECORDER is None


class TestPlaceholder:
    def test_placeholder_satisfies_table_arithmetic(self):
        plan_spec = None

        def capture():
            nonlocal plan_spec
            result = tiny()
            plan_spec = result
            return result

        build_plan({"e": capture})
        r = plan_spec
        assert r.ok
        assert r.staging_time > 0
        assert max(r.server_memory_peaks) >= 1
        assert r.sim_memory.value_at(0.0) == 0.0
        assert r.server_memory_breakdown == {}

    def test_worker_spec_reproduces_the_planned_key(self):
        # The parent-computed key must equal the key a worker derives
        # from the shipped spec — the contract cache seeding relies on.
        plan = build_plan({"e1": lambda: tiny()})
        task = plan.tasks[0]
        from repro.exec.pool import _execute_spec

        result, cache_hit = _execute_spec(task.spec, attempt=1)
        assert not cache_hit
        assert result.library is None
        assert task.key in runcache.CACHE._memory
