"""Per-library recovery semantics under injected faults (Table IV).

Each test pins one cell of the chaos matrix to the paper-documented
reaction: DataSpaces stalls (no failure detection), DIMES times out and
aborts, Flexpath drains and degrades, Decaf propagates a termination
token, MPI-IO restarts from the last complete file.
"""

import pytest

from repro.chaos import FaultEvent, FaultPlan, RecoveryPolicy
from repro.core import runcache
from repro.workflows import run_coupled
from repro.workflows.trace import ActivityTrace

CELL = dict(
    workflow="lammps", nsim=8, nana=4, steps=5,
    topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
)


@pytest.fixture(autouse=True)
def fresh_cache():
    runcache.clear()
    yield
    runcache.clear()


def _plan(event, watchdog=300.0):
    return FaultPlan(events=(event,), watchdog=watchdog)


def _clean(method, machine="titan"):
    result = run_coupled(machine=machine, method=method, **CELL)
    assert result.ok
    return result


class TestServerCrash:
    EVENT = FaultEvent("server_crash", after_puts=16, target=0)

    def test_dataspaces_hangs_until_the_watchdog(self):
        result = run_coupled(
            machine="titan", method="dataspaces",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert not result.ok
        assert result.failure.startswith("WorkflowHang")
        assert result.end_to_end == pytest.approx(300.0)

    def test_dataspaces_policy_is_swappable(self):
        # The same cell under timeout-abort fails fast and diagnosably
        # instead of stalling: the reaction is the policy's, not wired
        # into the library.
        result = run_coupled(
            machine="titan", method="dataspaces",
            fault_plan=_plan(self.EVENT),
            recovery=RecoveryPolicy("timeout-abort", timeout=20.0),
            **CELL,
        )
        assert not result.ok
        assert result.failure.startswith("StagingServerCrashed")
        assert result.end_to_end < 300.0

    def test_dimes_metadata_timeout_aborts(self):
        result = run_coupled(
            machine="titan", method="dimes",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert not result.ok
        assert result.failure.startswith("StagingServerCrashed")
        assert result.recovery_events > 0

    def test_decaf_aborts_the_mpi_world(self):
        result = run_coupled(
            machine="titan", method="decaf",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert not result.ok
        assert result.failure.startswith("NodeFailure")

    @pytest.mark.parametrize("method", ["flexpath", "mpiio"])
    def test_serverless_methods_are_unaffected(self, method):
        clean = _clean(method)
        result = run_coupled(
            machine="titan", method=method,
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert result.ok
        assert result.end_to_end == pytest.approx(clean.end_to_end)


class TestRankDeath:
    EVENT = FaultEvent("rank_death", after_puts=14, target=3, actor_kind="sim")

    def test_dataspaces_hangs(self):
        result = run_coupled(
            machine="titan", method="dataspaces",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert not result.ok
        assert result.failure.startswith("WorkflowHang")

    def test_dimes_loses_staged_versions(self):
        result = run_coupled(
            machine="titan", method="dimes",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert not result.ok
        assert result.failure.startswith("DataLoss")
        assert result.versions_lost > 0

    def test_flexpath_drains_and_degrades(self):
        clean = _clean("flexpath")
        result = run_coupled(
            machine="titan", method="flexpath",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert result.ok
        assert result.versions_lost > 0
        # Graceful degradation: the survivors finish on schedule.
        assert result.end_to_end <= clean.end_to_end * 1.05

    def test_decaf_terminates_cleanly_and_early(self):
        clean = _clean("decaf")
        result = run_coupled(
            machine="titan", method="decaf",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert result.ok
        assert result.versions_lost > 0
        assert result.end_to_end < clean.end_to_end

    def test_mpiio_restarts_from_file_with_zero_loss(self):
        result = run_coupled(
            machine="titan", method="mpiio",
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert result.ok
        assert result.versions_lost == 0
        assert result.recovery_events >= 1


class TestDrcRejection:
    EVENT = FaultEvent("drc_reject", at=0.0, duration=40.0)

    def test_no_retry_clients_abort(self):
        for method in ("dataspaces", "dimes"):
            result = run_coupled(
                machine="cori", method=method,
                fault_plan=_plan(self.EVENT, watchdog=600.0), **CELL,
            )
            assert not result.ok
            assert result.failure.startswith("CredentialRejected")

    def test_flexpath_backoff_outlasts_the_window(self):
        clean = _clean("flexpath", machine="cori")
        result = run_coupled(
            machine="cori", method="flexpath",
            fault_plan=_plan(self.EVENT, watchdog=600.0), **CELL,
        )
        assert result.ok
        assert result.end_to_end > clean.end_to_end  # paid the backoff

    def test_titan_has_no_credential_service_to_reject(self):
        clean = _clean("dataspaces")
        result = run_coupled(
            machine="titan", method="dataspaces",
            fault_plan=_plan(self.EVENT, watchdog=600.0), **CELL,
        )
        assert result.ok
        assert result.end_to_end == pytest.approx(clean.end_to_end)


class TestDegradations:
    def test_transport_degrade_slows_rdma_staging_only(self):
        plan = _plan(FaultEvent("transport_degrade", at=30.0, factor=32.0))
        clean = _clean("dataspaces")
        slowed = run_coupled(
            machine="titan", method="dataspaces", fault_plan=plan, **CELL,
        )
        assert slowed.ok and slowed.end_to_end > clean.end_to_end
        mpiio_clean = _clean("mpiio")
        mpiio = run_coupled(
            machine="titan", method="mpiio", fault_plan=plan, **CELL,
        )
        assert mpiio.ok
        assert mpiio.end_to_end == pytest.approx(mpiio_clean.end_to_end)

    def test_ost_slowdown_hits_the_file_based_method_only(self):
        plan = _plan(FaultEvent("ost_slow", at=30.0, target=1, factor=32.0))
        mpiio_clean = _clean("mpiio")
        mpiio = run_coupled(
            machine="titan", method="mpiio", fault_plan=plan, **CELL,
        )
        assert mpiio.ok and mpiio.end_to_end > mpiio_clean.end_to_end
        ds_clean = _clean("dataspaces")
        ds = run_coupled(
            machine="titan", method="dataspaces", fault_plan=plan, **CELL,
        )
        assert ds.ok
        assert ds.end_to_end == pytest.approx(ds_clean.end_to_end)

    def test_degradation_can_lift_again(self):
        # A bounded degradation costs less than a permanent one.
        forever = run_coupled(
            machine="titan", method="dataspaces",
            fault_plan=_plan(FaultEvent("transport_degrade", at=30.0,
                                        factor=32.0)),
            **CELL,
        )
        bounded = run_coupled(
            machine="titan", method="dataspaces",
            fault_plan=_plan(FaultEvent("transport_degrade", at=30.0,
                                        factor=32.0, duration=10.0)),
            **CELL,
        )
        assert forever.ok and bounded.ok
        assert bounded.end_to_end < forever.end_to_end


class TestChaosTrace:
    def test_fault_and_abort_glyphs_in_the_gantt(self):
        trace = ActivityTrace()
        run_coupled(
            machine="titan", method="dataspaces",
            fault_plan=_plan(
                FaultEvent("rank_death", after_puts=14, target=3)
            ),
            trace=trace, **CELL,
        )
        chart = trace.gantt()
        assert "K" in chart   # the dead rank's fault marker
        assert "X" in chart   # the watchdog abort
        assert "K=fault" in chart and "X=aborted" in chart

    def test_chrome_trace_roundtrip(self):
        import json

        trace = ActivityTrace()
        run_coupled(
            machine="titan", method="flexpath",
            fault_plan=_plan(
                FaultEvent("rank_death", after_puts=14, target=3)
            ),
            trace=trace, **CELL,
        )
        payload = json.loads(trace.to_chrome_trace())
        events = payload["traceEvents"]
        names = {e["name"] for e in events}
        assert "thread_name" in names        # actor rows are labelled
        assert "fault" in names              # the injection is visible
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        assert "i" in phases                 # zero-length fault markers
        # Every event references a declared thread.
        tids = {e["tid"] for e in events if e["ph"] == "M"}
        assert all(e["tid"] in tids for e in events)
