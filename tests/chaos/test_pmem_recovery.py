"""The restart-from-pmem recovery policy and the extended chaos matrix.

The persistent-memory tier's chaos story: checkpoint-mirroring
libraries restart a dead rank from its slab (zero version loss, no MDS
round-trip), the tier itself can be degraded as a sixth fault kind, and
the extended matrix pins all of it against the plain-tier controls.
"""

import pytest

from repro.chaos import FaultEvent, FaultPlan, RecoveryPolicy, chaos_matrix_ext
from repro.chaos.faults import FAULT_KINDS, TAXONOMY
from repro.core import runcache
from repro.staging import StagingConfig
from repro.workflows import run_coupled

CELL = dict(
    workflow="lammps", nsim=8, nana=4, steps=5,
    topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
)

RANK_DEATH = FaultEvent("rank_death", after_puts=14, target=3, actor_kind="sim")


@pytest.fixture(autouse=True)
def fresh_cache():
    runcache.clear()
    yield
    runcache.clear()


def _plan(event, watchdog=300.0):
    return FaultPlan(events=(event,), watchdog=watchdog)


def _config(library, pmem=False):
    return StagingConfig(
        transport="mpi" if library == "mpiio" else "ugni",
        use_adios=True, pmem_checkpoint=pmem,
    )


class TestTaxonomy:
    def test_pmem_degrade_is_a_fault_kind(self):
        assert "pmem_degrade" in FAULT_KINDS

    def test_pmem_device_failure_maps_to_its_fault_class(self):
        assert TAXONOMY["PmemDeviceFailure"] == "pmem_degrade"

    def test_restart_from_pmem_is_a_valid_policy(self):
        assert RecoveryPolicy("restart-from-pmem").kind == "restart-from-pmem"
        with pytest.raises(ValueError):
            RecoveryPolicy("restart-from-nowhere")


class TestRestartFromPmem:
    def test_mpiio_zero_loss_and_faster_than_file(self):
        """The headline cell: same zero-loss outcome as restart-from-
        file, but the recovery itself skips the Lustre MDS round-trip."""
        from_file = run_coupled(
            machine="titan", method="mpiio",
            config=_config("mpiio"),
            fault_plan=_plan(RANK_DEATH), **CELL,
        )
        from_pmem = run_coupled(
            machine="titan", method="mpiio",
            config=_config("mpiio", pmem=True),
            fault_plan=_plan(RANK_DEATH),
            recovery=RecoveryPolicy("restart-from-pmem"), **CELL,
        )
        for result in (from_file, from_pmem):
            assert result.ok
            assert result.versions_lost == 0
            assert result.recovery_events >= 1
        assert from_pmem.recovery_seconds > 0.0
        assert from_pmem.recovery_seconds < from_file.recovery_seconds

    def test_sst_mirroring_turns_drain_into_zero_loss(self):
        """Plain SST drains around a dead writer (holes in the stream);
        the mirrored tier restores the queue instead."""
        drained = run_coupled(
            machine="titan", method="sst",
            config=_config("sst"),
            fault_plan=_plan(RANK_DEATH), **CELL,
        )
        assert drained.ok
        assert drained.versions_lost > 0
        restored = run_coupled(
            machine="titan", method="sst",
            config=_config("sst", pmem=True),
            fault_plan=_plan(RANK_DEATH),
            recovery=RecoveryPolicy("restart-from-pmem"), **CELL,
        )
        assert restored.ok
        assert restored.versions_lost == 0
        assert restored.recovery_events >= 1
        assert restored.recovery_seconds > 0.0


class TestPmemDegrade:
    EVENT = FaultEvent("pmem_degrade", at=20.0, factor=32.0, duration=40.0)

    def test_controller_stall_hits_only_tier_tenants(self):
        clean = run_coupled(
            machine="titan", method="mpiio",
            config=_config("mpiio", pmem=True), **CELL,
        )
        assert clean.ok
        stalled = run_coupled(
            machine="titan", method="mpiio",
            config=_config("mpiio", pmem=True),
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert stalled.ok
        assert stalled.end_to_end > clean.end_to_end

    def test_plain_tier_runs_never_notice(self):
        clean = run_coupled(
            machine="titan", method="mpiio",
            config=_config("mpiio"), **CELL,
        )
        stalled = run_coupled(
            machine="titan", method="mpiio",
            config=_config("mpiio"),
            fault_plan=_plan(self.EVENT), **CELL,
        )
        assert stalled.ok
        assert stalled.end_to_end == pytest.approx(clean.end_to_end)


class TestExtendedMatrix:
    def test_matrix_pins_the_pmem_advantage(self):
        """chaos_matrix_ext reproduces deterministically and shows
        restart-from-pmem beating restart-from-file in ≥1 cell."""
        table = chaos_matrix_ext(seed=7)
        runcache.clear()
        again = chaos_matrix_ext(seed=7)
        assert table.rows == again.rows

        cells = {(r["fault"], r["library"], r["tier"]): r for r in table.rows}
        assert len(cells) == len(table.rows)

        pmem = cells[("rank_death", "mpiio", "pmem")]
        file_ = cells[("rank_death", "mpiio", "plain")]
        assert pmem["recovery"] == "restart-from-pmem"
        assert file_["recovery"] == "restart-from-file"
        assert pmem["outcome"] == file_["outcome"] == "completed"
        assert pmem["versions_lost"] == file_["versions_lost"] == 0
        assert 0.0 < pmem["recovery_seconds"] < file_["recovery_seconds"]

        drained = cells[("rank_death", "sst", "plain")]
        restored = cells[("rank_death", "sst", "pmem")]
        assert drained["versions_lost"] > 0
        assert restored["versions_lost"] == 0
        assert restored["outcome"] == "completed"
