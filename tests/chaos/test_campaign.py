"""Campaign determinism and the committed chaos goldens."""

import json
import os

import pytest

from repro.chaos import build_campaign, campaign
from repro.chaos.campaign import BLAST, CHAOS_LIBRARIES, MATRIX_FAULTS
from repro.chaos.faults import FAULT_KINDS
from repro.core import runcache

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "results")

OUTCOMES = {"completed", "degraded", "aborted", "hung-then-aborted"}


@pytest.fixture(autouse=True)
def fresh_cache():
    runcache.clear()
    yield
    runcache.clear()


def _golden(name):
    path = os.path.join(RESULTS_DIR, name)
    assert os.path.exists(path), f"missing golden {name}; run python -m repro chaos"
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class TestBuildCampaign:
    def test_pure_in_the_seed(self):
        assert build_campaign(7) == build_campaign(7)
        assert build_campaign(7) != build_campaign(8)

    def test_sweeps_every_fault_for_every_library(self):
        # The base matrix stays frozen to the paper's five Table IV
        # classes; pmem_degrade lives in the extended matrix so the
        # committed seed-7 rng draws never move.
        cells = build_campaign(7)
        combos = {(c["fault"], c["library"]) for c in cells}
        assert combos == {
            (fault, lib) for fault in MATRIX_FAULTS for lib in CHAOS_LIBRARIES
        }
        assert set(MATRIX_FAULTS) < set(FAULT_KINDS)

    def test_plan_is_shared_across_a_fault_row(self):
        cells = build_campaign(7)
        for fault in MATRIX_FAULTS:
            plans = {id(c["plan"]) for c in cells if c["fault"] == fault}
            assert len(plans) == 1


class TestCommittedGoldens:
    """Structural invariants of the committed seed-7 matrix."""

    def test_matrix_covers_the_full_sweep(self):
        rows = _golden("chaos_matrix.json")["rows"]
        combos = {(r["fault"], r["library"]) for r in rows}
        assert len({f for f, _ in combos}) >= 4
        for fault in MATRIX_FAULTS:
            assert {l for f, l in combos if f == fault} == set(CHAOS_LIBRARIES)

    def test_outcomes_use_the_closed_vocabulary(self):
        rows = _golden("chaos_matrix.json")["rows"]
        assert {r["outcome"] for r in rows} <= OUTCOMES

    def test_paper_semantics_hold_in_the_goldens(self):
        rows = {
            (r["fault"], r["library"]): r
            for r in _golden("chaos_matrix.json")["rows"]
        }
        assert rows[("server_crash", "dataspaces")]["outcome"] == "hung-then-aborted"
        assert rows[("server_crash", "flexpath")]["outcome"] == "completed"
        mpiio = rows[("rank_death", "mpiio")]
        assert mpiio["outcome"] == "completed"
        assert mpiio["versions_lost"] == 0 and mpiio["recovery_events"] >= 1
        assert rows[("rank_death", "flexpath")]["outcome"] == "degraded"
        assert rows[("drc_reject", "dataspaces")]["failure"] == "CredentialRejected"
        assert rows[("drc_reject", "flexpath")]["outcome"] == "completed"

    def test_blast_table_is_consistent_with_the_matrix(self):
        matrix = {
            (r["fault"], r["library"]): r["outcome"]
            for r in _golden("chaos_matrix.json")["rows"]
        }
        for row in _golden("chaos_blast.json")["rows"]:
            worst = "none"
            order = ("none", "partial", "workflow")
            for library in CHAOS_LIBRARIES:
                assert row[library] == matrix[(row["fault"], library)]
                category = BLAST[row[library]]
                if order.index(category) > order.index(worst):
                    worst = category
            assert row["blast_radius"] == worst


class TestChaosFindings:
    def test_every_chaos_finding_verifies(self):
        from repro.core.findings import CHAOS_FINDINGS

        assert len(CHAOS_FINDINGS) >= 2
        for finding in CHAOS_FINDINGS:
            assert finding.verify(), f"chaos finding {finding.number} failed"

    def test_table_v_still_renders_the_papers_eight(self):
        from repro.core.findings import FINDINGS, table5_findings

        assert len(FINDINGS) == 8
        assert len(table5_findings().rows) == 8


class TestDeterminismAcrossJobs:
    def test_serial_and_parallel_exports_are_byte_identical(
        self, tmp_path, monkeypatch
    ):
        # A smaller cell keeps the worker-pool round affordable; the
        # determinism claim is scale-independent.
        monkeypatch.setattr(
            campaign, "CELL",
            dict(
                workflow="lammps", nsim=4, nana=2, steps=3,
                topology_overrides=dict(
                    sim_ranks_per_node=1, ana_ranks_per_node=1
                ),
            ),
        )
        campaign.run_campaign(seed=11, jobs=1, export_dir=str(tmp_path / "serial"))
        runcache.clear()
        campaign.run_campaign(seed=11, jobs=2, export_dir=str(tmp_path / "pool"))
        for name in ("chaos_matrix.csv", "chaos_matrix.json",
                     "chaos_blast.csv", "chaos_blast.json"):
            serial = (tmp_path / "serial" / name).read_bytes()
            pool = (tmp_path / "pool" / name).read_bytes()
            assert serial == pool, f"{name} differs between job counts"
