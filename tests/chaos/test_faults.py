"""Fault-plan declarations, taxonomy coverage, and cache correctness."""

import pytest

import repro.hpc.failures as failures_mod
from repro.chaos import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    RecoveryPolicy,
    TAXONOMY,
)
from repro.core import runcache
from repro.core.runcache import config_key
from repro.hpc.failures import HpcError
from repro.workflows import run_coupled


@pytest.fixture(autouse=True)
def fresh_cache():
    runcache.clear()
    yield
    runcache.clear()


def _failure_classes():
    return [
        name
        for name, obj in vars(failures_mod).items()
        if isinstance(obj, type) and issubclass(obj, HpcError)
    ]


class TestTaxonomyCoverage:
    def test_every_failure_class_is_mapped(self):
        missing = [n for n in _failure_classes() if n not in TAXONOMY]
        assert not missing, (
            f"failure classes missing from the chaos taxonomy: {missing}; "
            f"map each to a fault kind or document its exclusion"
        )

    def test_no_stale_taxonomy_entries(self):
        stale = [n for n in TAXONOMY if not hasattr(failures_mod, n)]
        assert not stale

    def test_mappings_are_fault_kinds_or_documented_exclusions(self):
        for name, value in TAXONOMY.items():
            assert value in FAULT_KINDS or value.startswith("excluded:"), (
                f"{name} maps to {value!r}"
            )

    def test_new_failure_classes_exist(self):
        for name in ("StagingServerCrashed", "CredentialRejected",
                     "WorkflowHang"):
            assert issubclass(getattr(failures_mod, name), HpcError)


class TestDeclarations:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("disk_fire")

    def test_bad_actor_kind_rejected(self):
        with pytest.raises(ValueError, match="actor_kind"):
            FaultEvent("rank_death", actor_kind="io")

    def test_nonpositive_watchdog_rejected(self):
        with pytest.raises(ValueError, match="watchdog"):
            FaultPlan(watchdog=0.0)

    def test_event_list_frozen_to_tuple(self):
        plan = FaultPlan(events=[FaultEvent("ost_slow", at=1.0)])
        assert isinstance(plan.events, tuple)

    def test_unknown_recovery_kind_rejected(self):
        with pytest.raises(ValueError, match="recovery kind"):
            RecoveryPolicy("pray")

    def test_describe_mentions_trigger(self):
        assert "after 3 puts" in FaultEvent("rank_death", after_puts=3).describe()
        assert "t=2.5" in FaultEvent("ost_slow", at=2.5).describe()


class TestCacheCorrectness:
    """The FaultPlan must be part of the run-cache key — both ways."""

    PLAN = FaultPlan(events=(FaultEvent("rank_death", after_puts=3),))

    def test_plan_changes_the_key(self):
        assert config_key(fault_plan=None) != config_key(fault_plan=self.PLAN)

    def test_equal_plans_share_the_key(self):
        clone = FaultPlan(events=(FaultEvent("rank_death", after_puts=3),))
        assert config_key(fault_plan=self.PLAN) == config_key(fault_plan=clone)

    def test_different_plans_differ(self):
        other = FaultPlan(events=(FaultEvent("rank_death", after_puts=4),))
        assert config_key(fault_plan=self.PLAN) != config_key(fault_plan=other)

    def test_recovery_policy_changes_the_key(self):
        assert config_key(recovery=RecoveryPolicy("none")) != config_key(
            recovery=RecoveryPolicy("timeout-abort")
        )

    CELL = dict(
        machine="titan", workflow="lammps", method="flexpath",
        nsim=4, nana=2, steps=3,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )

    def test_chaos_run_never_answered_from_clean_entry(self):
        clean = run_coupled(**self.CELL)
        assert clean.ok
        plan = FaultPlan(
            events=(FaultEvent("rank_death", after_puts=2, target=1),)
        )
        chaos = run_coupled(fault_plan=plan, **self.CELL)
        assert chaos.versions_lost > 0  # a clean cache hit would show 0

    def test_clean_run_never_answered_from_chaos_entry(self):
        plan = FaultPlan(
            events=(FaultEvent("rank_death", after_puts=2, target=1),)
        )
        chaos = run_coupled(fault_plan=plan, **self.CELL)
        assert chaos.versions_lost > 0
        clean = run_coupled(**self.CELL)
        assert clean.ok and clean.versions_lost == 0
