"""Steady-state fast-forward equivalence (``fidelity="steady"``).

The temporal memoization must be invisible in the numbers: whenever the
driver fast-forwards a periodic tail it has to reproduce the exact
run's :class:`RunResult` float for float, and whenever it cannot prove
periodicity it has to fall back to the stricter mode and say why in
``RunResult.fidelity_fallback``.
"""

import pytest

from repro.chaos.faults import FaultEvent, FaultPlan, RecoveryPolicy
from repro.core import runcache
from repro.workflows import run_coupled
from repro.workflows.trace import ActivityTrace

from .test_perf_modes import assert_identical, fresh_run

METHODS = ["mpiio", "dataspaces", "dimes", "flexpath", "decaf"]


# --------------------------------------------------- exact reproduction


class TestSteadyEquivalence:
    @pytest.mark.parametrize("machine", ["titan", "cori"])
    @pytest.mark.parametrize("method", METHODS)
    def test_bitwise_equal_to_exact(self, machine, method):
        kwargs = dict(machine=machine, method=method, nsim=32, nana=16,
                      steps=8)
        exact = fresh_run(fidelity="exact", **kwargs)
        steady = fresh_run(fidelity="steady", **kwargs)
        assert exact.fidelity == "exact"
        assert steady.fidelity in ("steady", "exact")
        if steady.fidelity == "exact":
            # declined: the reason must be on record
            assert steady.fidelity_fallback.startswith("steady:")
        assert_identical(exact, steady, ignore=("fidelity",))

    @pytest.mark.parametrize("machine", ["titan", "cori"])
    @pytest.mark.parametrize("method", METHODS)
    def test_composed_equals_exact(self, machine, method):
        kwargs = dict(machine=machine, method=method, nsim=32, nana=16,
                      steps=8)
        exact = fresh_run(fidelity="exact", **kwargs)
        composed = fresh_run(fidelity="steady+clustered", **kwargs)
        # "clustered+batch": a requested clustering that declined can
        # still compile as the full contended group (batch supersedes
        # the steady fast-forward) — bit-identity is asserted below
        # either way.
        assert composed.fidelity in (
            "steady+clustered", "steady", "clustered", "clustered+batch",
            "exact"
        )
        assert_identical(exact, composed, ignore=("fidelity",))

    def test_compute_only_baseline_fast_forwards(self):
        kwargs = dict(machine="titan", method=None, nsim=32, nana=16,
                      steps=8)
        exact = fresh_run(fidelity="exact", **kwargs)
        steady = fresh_run(fidelity="steady", **kwargs)
        assert steady.fidelity == "steady"
        assert steady.fidelity_fallback is None
        assert_identical(exact, steady, ignore=("fidelity",))

    def test_engaged_run_simulates_fewer_events(self):
        # the point of the mode: once the orbit is proven, the tail is
        # replayed arithmetically instead of being simulated
        from repro.sim.engine import Environment

        counts = []
        orig = Environment.step

        def counting(env):
            counts[-1] += 1
            orig(env)

        Environment.step = counting
        try:
            for fidelity in ("exact", "steady"):
                counts.append(0)
                fresh_run(machine="cori", method="flexpath",
                          nsim=32, nana=16, steps=64, fidelity=fidelity)
        finally:
            Environment.step = orig
        exact_events, steady_events = counts
        assert steady_events < exact_events / 2

    def test_long_horizon_stays_identical(self):
        # the Δ-translation replay must stay exact over many skipped
        # steps, not just one
        kwargs = dict(machine="cori", method="dataspaces", nsim=32,
                      nana=16, steps=64)
        exact = fresh_run(fidelity="exact", **kwargs)
        steady = fresh_run(fidelity="steady", **kwargs)
        assert steady.fidelity == "steady"
        assert steady.fidelity_fallback is None
        assert_identical(exact, steady, ignore=("fidelity",))


# ------------------------------------------------------ fallback reasons


class TestSteadyFallbackReasons:
    KW = dict(machine="titan", method="dataspaces", nsim=32, nana=16)

    def test_traced_run_falls_back(self):
        result = fresh_run(fidelity="steady", trace=ActivityTrace(),
                           **self.KW)
        assert result.fidelity == "exact"
        assert result.fidelity_fallback == (
            "steady: traced run records every step"
        )

    def test_faulted_run_falls_back(self):
        plan = FaultPlan(events=(FaultEvent("ost_slow", at=1.0),))
        result = fresh_run(fidelity="steady", fault_plan=plan, **self.KW)
        assert result.fidelity == "exact"
        assert result.fidelity_fallback == (
            "steady: fault injection breaks periodicity"
        )

    def test_recovery_policy_falls_back(self):
        result = fresh_run(
            fidelity="steady",
            recovery=RecoveryPolicy("timeout-abort", timeout=20.0),
            **self.KW,
        )
        assert result.fidelity == "exact"
        assert result.fidelity_fallback == "steady: recovery policy armed"

    def test_too_few_steps_falls_back(self):
        result = fresh_run(fidelity="steady", steps=2, **self.KW)
        assert result.fidelity == "exact"
        assert "steps leave no room" in result.fidelity_fallback

    def test_fallback_is_cached_like_any_run(self):
        runcache.clear()
        plan = FaultPlan(events=(FaultEvent("ost_slow", at=1.0),))
        run_coupled(fidelity="steady", fault_plan=plan, **self.KW)
        hits_before = runcache.CACHE.hits
        again = run_coupled(fidelity="steady", fault_plan=plan, **self.KW)
        assert runcache.CACHE.hits == hits_before + 1
        assert again.fidelity_fallback == (
            "steady: fault injection breaks periodicity"
        )
