"""Unit tests for activity tracing and the Gantt renderer."""

import pytest

from repro.workflows import ActivityTrace, Interval, run_coupled


class TestActivityTrace:
    def test_record_and_query(self):
        trace = ActivityTrace()
        trace.record("sim0", "compute", 0.0, 10.0)
        trace.record("sim0", "put", 10.0, 12.0)
        trace.record("ana0", "get", 10.0, 12.0)
        assert trace.time_in("sim0", "compute") == 10.0
        assert trace.time_in("sim0", "put") == 2.0
        assert trace.end_time == 12.0
        assert trace.actors() == ["sim0", "ana0"]

    def test_invalid_activity(self):
        trace = ActivityTrace()
        with pytest.raises(ValueError):
            trace.record("x", "sleep", 0, 1)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval("x", "compute", 5.0, 3.0)

    def test_busy_fraction(self):
        trace = ActivityTrace()
        trace.record("sim0", "compute", 0.0, 5.0)
        trace.record("sim0", "wait", 5.0, 10.0)
        assert trace.busy_fraction("sim0") == pytest.approx(0.5)

    def test_empty_trace(self):
        trace = ActivityTrace()
        assert trace.gantt() == "(empty trace)"
        assert trace.busy_fraction("x") == 0.0

    def test_gantt_structure(self):
        trace = ActivityTrace()
        trace.record("sim0", "compute", 0.0, 8.0)
        trace.record("sim0", "put", 8.0, 10.0)
        trace.record("ana0", "get", 8.0, 10.0)
        chart = trace.gantt(width=40)
        lines = chart.splitlines()
        assert lines[0].startswith("sim0 |")
        assert "#" in lines[0]
        assert "P" in lines[0]
        assert "G" in lines[1]
        assert "legend:" in lines[-1]


class TestDriverIntegration:
    def test_trace_captures_workflow_phases(self):
        trace = ActivityTrace()
        result = run_coupled(
            "titan", "lammps", "flexpath", nsim=16, nana=8, steps=2,
            trace=trace,
        )
        assert result.ok
        assert trace.time_in("sim0", "compute") > 0
        assert trace.time_in("sim0", "put") > 0
        assert trace.time_in("ana0", "get") > 0
        assert trace.end_time <= result.end_to_end + 1e-9

    def test_compute_time_matches_cost_model(self):
        trace = ActivityTrace()
        run_coupled(
            "titan", "lammps", "flexpath", nsim=16, nana=8, steps=2,
            trace=trace,
        )
        # 2 steps x 20 Titan-seconds each.
        assert trace.time_in("sim0", "compute") == pytest.approx(40.0)

    def test_no_trace_by_default(self):
        result = run_coupled("titan", "lammps", None, nsim=16, nana=8, steps=1)
        assert result.ok  # simply must not crash without a trace
