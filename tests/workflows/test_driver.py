"""Unit/integration tests for the coupled-workflow driver."""

import math

import pytest

from repro.hpc import MB
from repro.workflows import (
    APP_INIT_SECONDS,
    LAMMPS,
    LAPLACE,
    get_workflow,
    lammps_variable,
    laplace_variable,
    run_coupled,
    synthetic_variable,
)


class TestCatalog:
    def test_lammps_variable_matches_table2(self):
        var = lammps_variable(32)
        assert var.dims == (5, 32, 512000)
        assert var.nbytes / 32 == pytest.approx(20.48 * 1e6, rel=0.02)  # ~20 MB

    def test_laplace_variable_default_128mb(self):
        var = laplace_variable(64)
        assert var.nbytes / 64 == 128 * MB

    def test_laplace_variable_size_sweep(self):
        var = laplace_variable(64, bytes_per_proc=512 * 1024)
        assert var.nbytes / 64 == 512 * 1024

    def test_synthetic_layouts(self):
        mism = synthetic_variable(16, axis_layout="mismatched")
        match = synthetic_variable(16, axis_layout="matched")
        # Mismatched: longest dim is the third, processors scale dim 2.
        assert mism.dims[2] > mism.dims[1]
        # Matched: the third (longest) dimension scales with nprocs.
        assert match.dims[2] == max(match.dims)
        with pytest.raises(ValueError):
            synthetic_variable(16, axis_layout="diagonal")

    def test_get_workflow(self):
        assert get_workflow("lammps") is LAMMPS
        assert get_workflow("LAPLACE") is LAPLACE
        with pytest.raises(KeyError):
            get_workflow("gromacs")


class TestComputeOnlyBaseline:
    def test_sim_only_time_is_compute_plus_init(self):
        r = run_coupled("titan", "lammps", method=None, nsim=32, nana=16, steps=5)
        assert r.ok
        # 5 s init + 5 steps x 20 s sim; analytics (6 s/step) finishes earlier.
        assert r.end_to_end == pytest.approx(APP_INIT_SECONDS + 5 * 20.0)

    def test_cori_scales_by_core_speed(self):
        titan = run_coupled("titan", "lammps", None, nsim=32, nana=16, steps=5)
        cori = run_coupled("cori", "lammps", None, nsim=32, nana=16, steps=5)
        ratio = (cori.end_to_end - APP_INIT_SECONDS) / (
            titan.end_to_end - APP_INIT_SECONDS
        )
        assert ratio == pytest.approx(2.2 / 1.4, rel=0.01)

    def test_weak_scaling_flat_without_io(self):
        small = run_coupled("titan", "lammps", None, nsim=32, nana=16)
        large = run_coupled("titan", "lammps", None, nsim=4096, nana=2048)
        assert large.end_to_end == pytest.approx(small.end_to_end)


class TestCoupledRuns:
    @pytest.mark.parametrize("method", ["flexpath", "dataspaces", "dimes",
                                        "decaf", "mpiio"])
    def test_all_methods_complete_small_scale(self, method):
        r = run_coupled("titan", "lammps", method, nsim=32, nana=16, steps=3)
        assert r.ok, r.failure
        assert r.end_to_end > APP_INIT_SECONDS
        assert r.bytes_staged > 0
        assert r.sim_finish <= r.end_to_end + 1e-9
        assert not math.isnan(r.ana_finish)

    def test_staging_adds_time_over_baseline(self):
        base = run_coupled("titan", "lammps", None, nsim=32, nana=16)
        staged = run_coupled("titan", "lammps", "flexpath", nsim=32, nana=16)
        assert staged.end_to_end > base.end_to_end

    def test_memory_timelines_recorded(self):
        r = run_coupled("titan", "lammps", "dataspaces", nsim=32, nana=16, steps=2)
        assert r.sim_memory is not None
        assert r.sim_memory.peak() > 173 * MB  # calc + library overhead
        assert r.server_memory is not None
        assert r.server_memory_peaks
        assert "index" in r.server_memory_breakdown

    def test_lammps_client_memory_matches_fig5(self):
        """~400 MB per LAMMPS processor: 173 calc + ~227 library."""
        r = run_coupled("titan", "lammps", "dataspaces", nsim=32, nana=16, steps=2)
        assert r.sim_memory.peak() == pytest.approx(400 * MB, rel=0.15)

    def test_decaf_client_memory_40pct_higher(self):
        ds = run_coupled("titan", "lammps", "dataspaces", nsim=32, nana=16, steps=2)
        decaf = run_coupled("titan", "lammps", "decaf", nsim=32, nana=16, steps=2)
        ratio = decaf.sim_memory.peak() / ds.sim_memory.peak()
        assert ratio == pytest.approx(1.4, abs=0.1)

    def test_failure_captured_not_raised(self):
        r = run_coupled("titan", "lammps", "dataspaces", nsim=8192, nana=4096)
        assert not r.ok
        assert "OutOfRdmaHandlers" in r.failure
        assert "FAILED" in r.summary()

    def test_result_summary_format(self):
        r = run_coupled("titan", "lammps", "flexpath", nsim=32, nana=16, steps=2)
        text = r.summary()
        assert "flexpath" in text
        assert "Titan" in text


class TestShapeProperties:
    def test_mpiio_grows_with_scale_in_memory_does_not(self):
        """The Figure 2 headline: MPI-IO end-to-end grows ~linearly."""
        mpiio = [
            run_coupled("titan", "lammps", "mpiio", nsim=n, nana=n // 2).end_to_end
            for n in (32, 2048, 8192)
        ]
        flex = [
            run_coupled("titan", "lammps", "flexpath", nsim=n, nana=n // 2).end_to_end
            for n in (32, 2048, 8192)
        ]
        assert mpiio[2] > mpiio[1] > mpiio[0]
        # MPI-IO grows faster and ends up the slowest method at scale.
        assert (mpiio[2] - mpiio[0]) > (flex[2] - flex[0])
        assert mpiio[2] > flex[2]
        # Flexpath grows by roughly the paper's ~60 %, not linearly.
        assert flex[2] / flex[0] < 1.8

    def test_dataspaces_n_to_1_penalty_on_titan(self):
        """Finding 1/3: LAMMPS + DataSpaces degrades with scale on Titan."""
        small = run_coupled("titan", "lammps", "dataspaces", nsim=32, nana=16)
        large = run_coupled("titan", "lammps", "dataspaces", nsim=4096, nana=2048)
        assert large.end_to_end > 1.4 * small.end_to_end

    def test_dataspaces_penalty_attenuated_on_cori(self):
        """Higher Aries throughput dampens the N-to-1 overhead."""
        titan = run_coupled("titan", "lammps", "dataspaces", nsim=4096, nana=2048)
        cori = run_coupled("cori", "lammps", "dataspaces", nsim=4096, nana=2048)
        titan_small = run_coupled("titan", "lammps", "dataspaces", nsim=32, nana=16)
        cori_small = run_coupled("cori", "lammps", "dataspaces", nsim=32, nana=16)
        titan_ratio = titan.end_to_end / titan_small.end_to_end
        cori_ratio = cori.end_to_end / cori_small.end_to_end
        assert cori_ratio < titan_ratio

    def test_dimes_immune_to_layout_mismatch(self):
        """Table V: Finding 3 does not apply to DIMES."""
        small = run_coupled("titan", "lammps", "dimes", nsim=32, nana=16)
        large = run_coupled("titan", "lammps", "dimes", nsim=4096, nana=2048)
        assert large.end_to_end < 1.15 * small.end_to_end

    def test_both_workflows_fail_at_top_scale_on_cori(self):
        """DRC overload at (8192, 4096) on Cori (Section III-B1)."""
        for workflow in ("lammps", "laplace"):
            r = run_coupled("cori", workflow, "dataspaces", nsim=8192, nana=4096)
            assert not r.ok
            assert "DrcOverload" in r.failure
