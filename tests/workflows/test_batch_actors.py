"""Vectorized batch actors: equivalence, engagement and fallbacks.

The batch-actor engine (``repro.staging.batch``) may only change *how*
a clustered run is computed, never *what* it computes:

* **batch == per-rank** — when the compilation engages, every exported
  number (times, stats, memory timelines, server peaks) must equal the
  per-rank clustered run float for float;
* **honest refusal** — every configuration the compilers cannot prove
  byte-identical must decline with a recorded reason, including at
  runtime (a mid-compile ``BatchDecline`` falls back to the exact
  per-rank chains in place);
* **it is actually cheaper** — an engaged run must simulate far fewer
  events than the generator chains it replaces.
"""

import pytest

from repro.core import runcache
from repro.staging.batch import BatchDecline
from repro.staging.ndarray import Variable
from repro.workflows import run_coupled

from .test_perf_modes import MATCHED, assert_identical, fresh_run

#: decaf on Cori splits into gcd(sim, ana, dflow) identical 1:1:1
#: islands (uniform dragonfly hops); titan's torus hops refuse
DECAF_ISLANDS = dict(method="decaf", nsim=512, nana=512, steps=5)

#: the smallest Figure 2 cell, method left open
FIG2_CELL = dict(
    workflow="lammps", nsim=32, nana=16, steps=5,
    fidelity="steady+clustered",
)

#: every library x machine cell of the Figure 2 sweeps: either the
#: contended-path compilation engages (None) or the run records this
#: specific, stable decline prefix in ``batch_fallback``
FIG2_ATTRIBUTION = {
    ("titan", "mpiio"): None,
    ("titan", "dimes"): None,
    ("titan", "dimes-adios"): None,
    ("titan", "flexpath"):
        "batch: flexpath notifications fan out through shared EVPath",
    ("titan", "dataspaces"): "batch: clustered fidelity did not engage",
    ("titan", "dataspaces-adios"):
        "batch: clustered fidelity did not engage",
    ("titan", "decaf"): "batch: clustered fidelity did not engage",
    ("cori", "mpiio"): None,
    ("cori", "dimes"): "batch: DRC credential service present",
    ("cori", "dimes-adios"): "batch: DRC credential service present",
    ("cori", "flexpath"):
        "batch: flexpath notifications fan out through shared EVPath",
    ("cori", "dataspaces"): "batch: clustered fidelity did not engage",
    ("cori", "dataspaces-adios"):
        "batch: clustered fidelity did not engage",
    ("cori", "decaf"): "batch: decaf compiles 1:1:1 islands only",
}


def batch_pair(**kwargs):
    """The same configuration with the compilation off and on."""
    off = fresh_run(batch_actors=False, **kwargs)
    on = fresh_run(batch_actors=True, **kwargs)
    return off, on


class TestBatchEquivalence:
    def test_dataspaces_matched_rdma_engages(self):
        kwargs = {**MATCHED, "transport": "ugni"}
        off, on = batch_pair(machine="titan", fidelity="clustered", **kwargs)
        assert off.fidelity == "clustered"
        assert on.fidelity == "clustered+batch"
        assert on.batch_fallback is None
        assert_identical(off, on, ignore=("fidelity",))

    def test_decaf_islands_engage_on_cori(self):
        off, on = batch_pair(
            machine="cori", fidelity="clustered", **DECAF_ISLANDS
        )
        assert off.fidelity == "clustered"
        assert on.fidelity == "clustered+batch"
        assert on.batch_fallback is None
        assert_identical(off, on, ignore=("fidelity",))

    def test_engaged_by_default_when_clustered(self):
        # batch_actors=None (the default) tries the compilation too.
        result = fresh_run(
            machine="titan", fidelity="clustered",
            **{**MATCHED, "transport": "ugni"},
        )
        assert result.fidelity == "clustered+batch"
        assert result.batch_fallback is None

    def test_dimes_contended_group_engages_on_titan(self):
        # DIMES funnels every rank through the shared multi-slot
        # metadata CPU; the max-plus scan compiles it bit-identically.
        off, on = batch_pair(machine="titan", method="dimes", **FIG2_CELL)
        assert on.fidelity == "clustered+batch"
        assert on.batch_fallback is None
        assert_identical(off, on, ignore=("fidelity",))

    @pytest.mark.parametrize("machine", ["titan", "cori"])
    def test_mpiio_lustre_merge_engages(self, machine):
        # MPI-IO free-runs under the steps-deep window; the op-stream
        # merge over the MDS FIFO + OST cursors stays bit-identical.
        off, on = batch_pair(machine=machine, method="mpiio", **FIG2_CELL)
        assert on.fidelity == "clustered+batch"
        assert on.batch_fallback is None
        assert_identical(off, on, ignore=("fidelity",))

    def test_flexpath_point_to_point_engages(self):
        # A 1:1 subscription graph is a static partition: one source
        # stone, one sink, one edge — the pipeline compiles.
        off, on = batch_pair(
            machine="titan", method="flexpath", workflow="lammps",
            nsim=4, nana=4, steps=5, fidelity="steady+clustered",
        )
        assert on.fidelity == "clustered+batch"
        assert on.batch_fallback is None
        assert_identical(off, on, ignore=("fidelity",))

    def test_engaged_run_simulates_fewer_events(self):
        from repro.sim.engine import Environment

        counts = []
        orig = Environment.step

        def counting(env):
            counts[-1] += 1
            orig(env)

        Environment.step = counting
        try:
            for batch in (False, True):
                counts.append(0)
                fresh_run(
                    machine="titan", fidelity="clustered",
                    batch_actors=batch, **{**MATCHED, "transport": "ugni"},
                )
        finally:
            Environment.step = orig
        per_rank_events, batch_events = counts
        assert batch_events < per_rank_events / 10


class TestQueueModels:
    """The compile-time FIFO queue models equal the live Resource."""

    CASES = [
        # (capacity, service_ticks, arrival ticks)
        (1, 3, [0, 1, 2, 3, 10, 11]),
        (2, 5, [0, 0, 1, 2, 3, 4, 20]),
        (3, 4, [0, 1, 1, 1, 2, 9, 9, 30, 31]),
        (4, 7, list(range(12))),
    ]

    @staticmethod
    def simulate(capacity, service, arrivals):
        """Grant/finish ticks from a live capacity-k Resource."""
        from repro.sim import Environment, Resource

        env = Environment()
        res = Resource(env, capacity=capacity)
        out = {}

        def requester(env, idx, arrival):
            yield env.timeout(arrival)
            with res.request() as req:
                yield req
                grant = env.now
                yield env.timeout(service)
                out[idx] = (grant, env.now)

        for idx, arrival in enumerate(arrivals):
            env.process(requester(env, idx, arrival))
        env.run()
        return [out[idx] for idx in range(len(arrivals))]

    @pytest.mark.parametrize("capacity,service,arrivals", CASES)
    def test_fifo_queue_matches_live_resource(
        self, capacity, service, arrivals,
    ):
        from repro.staging.batch import FifoQueue

        queue = FifoQueue(capacity, name="test")
        model = [
            queue.serve(arrival, service, cohort="spawn")
            for arrival in arrivals
        ]
        assert model == self.simulate(capacity, service, arrivals)

    @pytest.mark.parametrize("capacity,service,arrivals", CASES)
    def test_fifo_scan_matches_live_resource(
        self, capacity, service, arrivals,
    ):
        import numpy as np

        from repro.staging.batch import fifo_scan

        finishes = fifo_scan(
            np.asarray(arrivals, dtype=np.int64), service, capacity,
        )
        live = [fin for _grant, fin in
                self.simulate(capacity, service, arrivals)]
        assert finishes.tolist() == live

    def test_fifo_scan_declines_unsorted_arrivals(self):
        import numpy as np

        from repro.staging.batch import fifo_scan

        with pytest.raises(BatchDecline):
            fifo_scan(np.asarray([5, 3], dtype=np.int64), 2, 1)

    def test_fifo_queue_declines_uncertified_tie(self):
        from repro.staging.batch import FifoQueue

        queue = FifoQueue(2, name="test")
        queue.serve(4, 3, cohort="a")
        with pytest.raises(BatchDecline):
            queue.serve(4, 3, cohort="b")


class TestBatchRefusals:
    def test_tcp_sockets_decline(self):
        # Connection-pooled sockets serialize unrelated chains through
        # shared per-node pools; the certificate must refuse.
        off, on = batch_pair(machine="titan", fidelity="clustered", **MATCHED)
        assert on.fidelity == "clustered"
        assert on.batch_fallback is not None
        assert "batch" in on.batch_fallback
        assert_identical(off, on)

    def test_decaf_wide_islands_decline(self):
        # nsim=512/nana=256 clusters into 2:1:1 islands — two producers
        # interleave on the dflow NIC, which the compiler refuses.
        result = fresh_run(
            machine="cori", method="decaf", nsim=512, nana=256,
            fidelity="clustered", batch_actors=True,
        )
        assert result.fidelity == "clustered"
        assert result.batch_fallback is not None
        assert "1:1:1" in result.batch_fallback

    def test_without_clustering_nothing_compiles(self):
        result = fresh_run(
            machine="titan", fidelity="exact", batch_actors=True,
            **{**MATCHED, "transport": "ugni"},
        )
        assert result.fidelity == "exact"
        assert result.batch_fallback == (
            "batch: clustered fidelity did not engage"
        )

    @pytest.mark.parametrize("method,expect", [
        ("dimes", "batch: dimes compiles the full contended group"),
        ("mpiio", "batch: mpiio compiles the full contended group"),
        ("flexpath", "batch: flexpath notifications fan out"),
    ])
    def test_contended_compilers_refuse_cluster_splits(self, method, expect):
        # The contended-path compilers model the *whole* group's shared
        # resources (metadata CPUs, the Lustre MDS, stone queues); a
        # subgroup split — or, for flexpath, any fan-out wider than the
        # point-to-point partition — is outside every certificate.
        from repro.hpc.cluster import Cluster
        from repro.hpc.machines import get_machine
        from repro.sim import Environment
        from repro.staging.base import ClusterPlan
        from repro.staging.decomposition import application_decomposition
        from repro.staging.factory import make_library

        env = Environment()
        cluster = Cluster(env, get_machine("titan"))
        var = Variable("v", (8192, 64))
        library = make_library(
            method, cluster, nsim=8, nana=8, variable=var, steps=5,
        )
        regions = application_decomposition(var, 8, 0)
        plan = ClusterPlan(sim_reps=1, ana_reps=1, server_reps=1, groups=8)
        assert library.batch_plan(plan, regions, regions) is None
        assert library.batch_decline.startswith(expect)

    @pytest.mark.parametrize(
        "machine,method", sorted(FIG2_ATTRIBUTION),
        ids=[f"{m}-{lib}" for m, lib in sorted(FIG2_ATTRIBUTION)],
    )
    def test_fig2_cells_engage_or_decline_with_stable_reason(
        self, machine, method,
    ):
        # Every Figure 2 cell either compiles to ``clustered+batch`` or
        # records a specific, stable refusal in ``batch_fallback`` — no
        # cell may silently change attribution.
        expect = FIG2_ATTRIBUTION[(machine, method)]
        result = fresh_run(machine=machine, method=method,
                           batch_actors=True, **FIG2_CELL)
        if expect is None:
            assert result.fidelity == "clustered+batch"
            assert result.batch_fallback is None
        else:
            assert result.fidelity != "clustered+batch"
            assert result.batch_fallback is not None
            assert result.batch_fallback.startswith(expect)

    def test_runtime_decline_falls_back_in_place(self, monkeypatch):
        # A certificate that fails its live checks mid-compile must run
        # the exact per-rank chains and still produce identical output.
        from repro.staging.dataspaces import DataSpaces

        kwargs = {**MATCHED, "transport": "ugni"}
        off = fresh_run(
            machine="titan", fidelity="clustered",
            batch_actors=False, **kwargs,
        )

        def declining(self, bplan, ctx):
            raise BatchDecline("batch: synthetic runtime decline")

        monkeypatch.setattr(DataSpaces, "batch_step", declining)
        on = fresh_run(
            machine="titan", fidelity="clustered",
            batch_actors=True, **kwargs,
        )
        assert on.fidelity == "clustered"
        assert on.batch_fallback == "batch: synthetic runtime decline"
        assert_identical(off, on)

    def test_batch_supersedes_steady(self):
        kwargs = {**MATCHED, "transport": "ugni"}
        result = fresh_run(
            machine="titan", fidelity="steady+clustered",
            batch_actors=True, steps=12, **kwargs,
        )
        assert result.fidelity == "clustered+batch"
        assert result.fidelity_fallback == (
            "steady: superseded by the batch-actor compilation"
        )

    def test_batch_choice_is_part_of_the_cache_key(self):
        kwargs = dict(
            machine="titan", fidelity="clustered",
            **{**MATCHED, "transport": "ugni"},
        )
        runcache.clear()
        on = run_coupled(batch_actors=True, **kwargs)
        off = run_coupled(batch_actors=False, **kwargs)
        assert on.fidelity == "clustered+batch"
        assert off.fidelity == "clustered"
