"""Vectorized batch actors: equivalence, engagement and fallbacks.

The batch-actor engine (``repro.staging.batch``) may only change *how*
a clustered run is computed, never *what* it computes:

* **batch == per-rank** — when the compilation engages, every exported
  number (times, stats, memory timelines, server peaks) must equal the
  per-rank clustered run float for float;
* **honest refusal** — every configuration the compilers cannot prove
  byte-identical must decline with a recorded reason, including at
  runtime (a mid-compile ``BatchDecline`` falls back to the exact
  per-rank chains in place);
* **it is actually cheaper** — an engaged run must simulate far fewer
  events than the generator chains it replaces.
"""

import pytest

from repro.core import runcache
from repro.staging.batch import BatchDecline
from repro.staging.ndarray import Variable
from repro.workflows import run_coupled

from .test_perf_modes import MATCHED, assert_identical, fresh_run

#: decaf on Cori splits into gcd(sim, ana, dflow) identical 1:1:1
#: islands (uniform dragonfly hops); titan's torus hops refuse
DECAF_ISLANDS = dict(method="decaf", nsim=512, nana=512, steps=5)


def batch_pair(**kwargs):
    """The same configuration with the compilation off and on."""
    off = fresh_run(batch_actors=False, **kwargs)
    on = fresh_run(batch_actors=True, **kwargs)
    return off, on


class TestBatchEquivalence:
    def test_dataspaces_matched_rdma_engages(self):
        kwargs = {**MATCHED, "transport": "ugni"}
        off, on = batch_pair(machine="titan", fidelity="clustered", **kwargs)
        assert off.fidelity == "clustered"
        assert on.fidelity == "clustered+batch"
        assert on.batch_fallback is None
        assert_identical(off, on, ignore=("fidelity",))

    def test_decaf_islands_engage_on_cori(self):
        off, on = batch_pair(
            machine="cori", fidelity="clustered", **DECAF_ISLANDS
        )
        assert off.fidelity == "clustered"
        assert on.fidelity == "clustered+batch"
        assert on.batch_fallback is None
        assert_identical(off, on, ignore=("fidelity",))

    def test_engaged_by_default_when_clustered(self):
        # batch_actors=None (the default) tries the compilation too.
        result = fresh_run(
            machine="titan", fidelity="clustered",
            **{**MATCHED, "transport": "ugni"},
        )
        assert result.fidelity == "clustered+batch"
        assert result.batch_fallback is None

    def test_engaged_run_simulates_fewer_events(self):
        from repro.sim.engine import Environment

        counts = []
        orig = Environment.step

        def counting(env):
            counts[-1] += 1
            orig(env)

        Environment.step = counting
        try:
            for batch in (False, True):
                counts.append(0)
                fresh_run(
                    machine="titan", fidelity="clustered",
                    batch_actors=batch, **{**MATCHED, "transport": "ugni"},
                )
        finally:
            Environment.step = orig
        per_rank_events, batch_events = counts
        assert batch_events < per_rank_events / 10


class TestBatchRefusals:
    def test_tcp_sockets_decline(self):
        # Connection-pooled sockets serialize unrelated chains through
        # shared per-node pools; the certificate must refuse.
        off, on = batch_pair(machine="titan", fidelity="clustered", **MATCHED)
        assert on.fidelity == "clustered"
        assert on.batch_fallback is not None
        assert "batch" in on.batch_fallback
        assert_identical(off, on)

    def test_decaf_wide_islands_decline(self):
        # nsim=512/nana=256 clusters into 2:1:1 islands — two producers
        # interleave on the dflow NIC, which the compiler refuses.
        result = fresh_run(
            machine="cori", method="decaf", nsim=512, nana=256,
            fidelity="clustered", batch_actors=True,
        )
        assert result.fidelity == "clustered"
        assert result.batch_fallback is not None
        assert "1:1:1" in result.batch_fallback

    def test_without_clustering_nothing_compiles(self):
        result = fresh_run(
            machine="titan", fidelity="exact", batch_actors=True,
            **{**MATCHED, "transport": "ugni"},
        )
        assert result.fidelity == "exact"
        assert result.batch_fallback == (
            "batch: clustered fidelity did not engage"
        )

    @pytest.mark.parametrize("method", ["dimes", "flexpath", "mpiio"])
    def test_contended_libraries_always_decline(self, method):
        # These libraries funnel every rank through shared resources
        # (metadata CPUs, stone queues, Lustre MDS/OSTs) whose grant
        # order is contention-dependent — no static compilation exists.
        from repro.hpc.cluster import Cluster
        from repro.hpc.machines import get_machine
        from repro.sim import Environment
        from repro.staging.base import ClusterPlan
        from repro.staging.factory import make_library

        env = Environment()
        cluster = Cluster(env, get_machine("titan"))
        library = make_library(
            method, cluster, nsim=8, nana=8,
            variable=Variable("v", (8192, 64)), steps=5,
        )
        plan = ClusterPlan(sim_reps=1, ana_reps=1, server_reps=1, groups=8)
        assert library.batch_plan(plan, [], []) is None
        assert library.batch_decline.startswith("batch:")
        assert method.replace("_", "") in library.batch_decline.replace("-", "")

    def test_runtime_decline_falls_back_in_place(self, monkeypatch):
        # A certificate that fails its live checks mid-compile must run
        # the exact per-rank chains and still produce identical output.
        from repro.staging.dataspaces import DataSpaces

        kwargs = {**MATCHED, "transport": "ugni"}
        off = fresh_run(
            machine="titan", fidelity="clustered",
            batch_actors=False, **kwargs,
        )

        def declining(self, bplan, ctx):
            raise BatchDecline("batch: synthetic runtime decline")

        monkeypatch.setattr(DataSpaces, "batch_step", declining)
        on = fresh_run(
            machine="titan", fidelity="clustered",
            batch_actors=True, **kwargs,
        )
        assert on.fidelity == "clustered"
        assert on.batch_fallback == "batch: synthetic runtime decline"
        assert_identical(off, on)

    def test_batch_supersedes_steady(self):
        kwargs = {**MATCHED, "transport": "ugni"}
        result = fresh_run(
            machine="titan", fidelity="steady+clustered",
            batch_actors=True, steps=12, **kwargs,
        )
        assert result.fidelity == "clustered+batch"
        assert result.fidelity_fallback == (
            "steady: superseded by the batch-actor compilation"
        )

    def test_batch_choice_is_part_of_the_cache_key(self):
        kwargs = dict(
            machine="titan", fidelity="clustered",
            **{**MATCHED, "transport": "ugni"},
        )
        runcache.clear()
        on = run_coupled(batch_actors=True, **kwargs)
        off = run_coupled(batch_actors=False, **kwargs)
        assert on.fidelity == "clustered+batch"
        assert off.fidelity == "clustered"
