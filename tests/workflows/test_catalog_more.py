"""Additional catalog and driver coverage."""

import pytest

from repro.hpc import MB
from repro.staging import calibration as cal
from repro.workflows import (
    LAMMPS,
    LAPLACE,
    SYNTHETIC,
    WORKFLOWS,
    run_coupled,
)


class TestCatalogDetails:
    def test_calc_memory_models(self):
        # LAMMPS: fixed 173 MB regardless of output size.
        assert LAMMPS.sim_calc_bytes(20 * MB) == cal.LAMMPS_CALC_BYTES
        assert LAMMPS.sim_calc_bytes(128 * MB) == cal.LAMMPS_CALC_BYTES
        # Laplace: two grid copies.
        assert LAPLACE.sim_calc_bytes(128 * MB) == 2.0 * 128 * MB
        # Analytics working sets scale with what they read.
        assert LAMMPS.ana_calc_bytes(40 * MB) == cal.MSD_CALC_FACTOR * 40 * MB

    def test_ranks_per_node_defaults(self):
        assert LAMMPS.sim_ranks_per_node == 8
        assert LAPLACE.sim_ranks_per_node == 16  # fills Titan's cores

    def test_catalog_complete(self):
        assert set(WORKFLOWS) == {"lammps", "laplace", "synthetic"}

    def test_synthetic_zero_compute(self):
        assert SYNTHETIC.sim_step_seconds == 0.0


class TestDriverEdges:
    def test_step_override(self):
        r = run_coupled("titan", "lammps", None, nsim=8, nana=4, steps=2,
                        sim_step_seconds=1.0, ana_step_seconds=0.5)
        assert r.end_to_end == pytest.approx(5.0 + 2 * 1.0)

    def test_explicit_variable_wins(self):
        from repro.staging import Variable

        var = Variable("custom", (4, 8, 10))
        r = run_coupled("titan", "synthetic", "flexpath", nsim=8, nana=4,
                        steps=1, variable=var,
                        sim_step_seconds=0.0, ana_step_seconds=0.0)
        assert r.ok
        assert r.library.variable is var

    def test_scheduler_violation_captured(self):
        r = run_coupled("titan", "lammps", "flexpath", nsim=8, nana=4,
                        shared_nodes=True)
        assert not r.ok
        assert "SchedulerPolicyViolation" in r.failure

    def test_bytes_staged_accounting(self):
        r = run_coupled("titan", "lammps", "dimes", nsim=32, nana=16, steps=2)
        var_bytes = r.library.variable.nbytes
        assert r.bytes_staged == pytest.approx(2 * var_bytes)

    def test_server_breakdown_in_result(self):
        r = run_coupled("titan", "lammps", "dataspaces", nsim=32, nana=16,
                        steps=1)
        assert "index" in r.server_memory_breakdown
        assert "server-base" in r.server_memory_breakdown
