"""Determinism and clustered-fidelity equivalence of the driver.

Two properties back the performance work of this repo:

* **determinism** — the simulation breaks time ties by event id, so the
  same configuration always produces bit-identical results (this is
  what makes the run cache and the golden files sound);
* **clustered == exact** — when ``fidelity="clustered"`` engages, the
  representative-group run must reproduce the exact run bit for bit,
  and it must *refuse* to engage whenever a structural coupling (DRC,
  non-uniform hops, mismatched layouts...) would break that.
"""

import pytest

from repro.core import runcache
from repro.staging.ndarray import Variable
from repro.workflows import run_coupled

SCALAR_FIELDS = (
    "end_to_end", "sim_finish", "ana_finish", "put_time", "get_time",
    "bytes_staged", "failure", "server_memory_peaks", "fidelity",
)


def fresh_run(**kwargs):
    """A run that cannot be served from the in-process cache."""
    runcache.clear()
    return run_coupled(**kwargs)


def assert_identical(a, b, ignore=()):
    for field in SCALAR_FIELDS:
        if field in ignore:
            continue
        assert getattr(a, field) == getattr(b, field), field
    for field in ("sim_memory", "ana_memory", "server_memory"):
        if field in ignore:
            continue
        sa, sb = getattr(a, field), getattr(b, field)
        assert (sa is None) == (sb is None), field
        if sa is not None:
            assert sa.times == sb.times, field
            assert sa.values == sb.values, field


# ---------------------------------------------------------- determinism


class TestDeterminism:
    @pytest.mark.parametrize("method", [None, "dataspaces", "mpiio"])
    def test_same_config_bit_identical(self, method):
        kwargs = dict(machine="titan", method=method, nsim=32, nana=16)
        first = fresh_run(**kwargs)
        second = fresh_run(**kwargs)
        assert first is not second
        assert_identical(first, second)

    def test_across_machines_differ(self):
        titan = fresh_run(machine="titan", method="dataspaces", nsim=32, nana=16)
        cori = fresh_run(machine="cori", method="dataspaces", nsim=32, nana=16)
        assert titan.end_to_end != cori.end_to_end


# ------------------------------------------------ clustered equivalence

MATCHED = dict(
    method="dataspaces", workflow="synthetic", nsim=8, nana=8,
    num_servers=8, transport="tcp", variable=Variable("v", (8192, 64)),
    app_axis=0,
    topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
)


class TestClusteredEquivalence:
    @pytest.mark.parametrize("machine", ["titan", "cori"])
    @pytest.mark.parametrize(
        "kwargs,engages",
        [
            # compute-only baselines: no interactions, always clusterable
            (dict(method=None, nsim=512, nana=256), {"titan": True, "cori": True}),
            # Decaf islands: uniform one-hop distances on Cori's
            # dragonfly; Titan's torus hops vary with placement offset
            (dict(method="decaf", nsim=512, nana=256), {"titan": False, "cori": True}),
            # matched-layout DataSpaces over sockets: isolated chains
            (MATCHED, {"titan": True, "cori": True}),
        ],
        ids=["compute-only", "decaf", "dataspaces-matched"],
    )
    def test_bitwise_equal_and_engagement(self, machine, kwargs, engages):
        exact = fresh_run(machine=machine, fidelity="exact", **kwargs)
        clustered = fresh_run(machine=machine, fidelity="clustered", **kwargs)
        expected = "clustered" if engages[machine] else "exact"
        assert clustered.fidelity == expected
        assert exact.fidelity == "exact"
        assert_identical(exact, clustered, ignore=("fidelity",))

    def test_drc_blocks_clustering_on_cori(self):
        # uGNI on Cori goes through the single DRC credential service,
        # which staggers the chains: the mode must refuse.
        result = fresh_run(machine="cori", fidelity="clustered",
                           **{**MATCHED, "transport": "ugni"})
        assert result.fidelity == "exact"

    def test_mismatched_layout_blocks_clustering(self):
        # LAMMPS decomposes axis 1 while the partition splits axis 2:
        # every writer touches every server (the Finding-3 herd).
        result = fresh_run(machine="cori", fidelity="clustered",
                           method="dataspaces", nsim=512, nana=256)
        assert result.fidelity == "exact"

    def test_clustered_runs_fewer_actors(self):
        # The point of the mode: representative chains, same numbers.
        from repro.sim.engine import Environment

        counts = []
        orig = Environment.step

        def counting(env):
            counts[-1] += 1
            orig(env)

        Environment.step = counting
        try:
            for fidelity in ("exact", "clustered"):
                counts.append(0)
                fresh_run(machine="cori", method="decaf",
                          nsim=512, nana=256, fidelity=fidelity)
        finally:
            Environment.step = orig
        exact_events, clustered_events = counts
        assert clustered_events < exact_events / 2

    def test_exact_default(self):
        result = fresh_run(machine="titan", method=None, nsim=32, nana=16)
        assert result.fidelity == "exact"

    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ValueError):
            run_coupled(fidelity="fast")
