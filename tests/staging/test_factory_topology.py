"""Unit tests for the method factory and the Topology actor math."""

import pytest

from repro.hpc import Cluster, TITAN
from repro.sim import Environment
from repro.staging import (
    DataSpaces,
    Decaf,
    Dimes,
    Flexpath,
    METHODS,
    MpiIo,
    StagingConfig,
    Topology,
    Variable,
    make_library,
    method_names,
)


def make(method, nsim=32, nana=16, **kwargs):
    env = Environment()
    cluster = Cluster(env, TITAN)
    var = Variable("v", (4, max(nsim, 8), 100))
    return make_library(method, cluster, nsim=nsim, nana=nana, variable=var, **kwargs)


class TestFactory:
    def test_method_names_stable(self):
        assert method_names() == [
            "dataspaces", "dataspaces-adios", "dimes", "dimes-adios",
            "flexpath", "decaf", "mpiio", "sst",
        ]

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("dataspaces", DataSpaces),
            ("dataspaces-adios", DataSpaces),
            ("dimes", Dimes),
            ("flexpath", Flexpath),
            ("decaf", Decaf),
            ("mpiio", MpiIo),
        ],
    )
    def test_classes(self, name, cls):
        assert isinstance(make(name), cls)

    def test_adios_flag(self):
        assert make("dataspaces-adios").config.use_adios
        assert not make("dataspaces").config.use_adios
        assert make("mpiio").config.use_adios  # MPI-IO runs through ADIOS

    def test_explicit_config_wins(self):
        config = StagingConfig(transport="verbs", max_versions=3)
        lib = make("dataspaces", config=config)
        assert lib.config.max_versions == 3
        assert lib.transport.name == "verbs"

    def test_transport_override_on_explicit_config(self):
        config = StagingConfig(transport="verbs")
        lib = make("dataspaces", config=config, transport="tcp")
        assert lib.transport.name == "tcp"

    def test_display_names(self):
        assert METHODS["flexpath"].display == "Flexpath (ADIOS)"


class TestTopology:
    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            Topology(nsim=0, nana=1)
        with pytest.raises(ValueError):
            Topology(nsim=1, nana=1, sim_ranks_per_node=0)

    def test_node_counts(self):
        topo = Topology(nsim=100, nana=40, nservers=5,
                        sim_ranks_per_node=8, ana_ranks_per_node=8,
                        servers_per_node=2)
        assert topo.sim_nodes == 13
        assert topo.ana_nodes == 5
        assert topo.server_nodes == 3

    def test_small_runs_one_actor_per_node(self):
        topo = Topology(nsim=32, nana=16, nservers=2)
        assert topo.node_scale == 1
        assert topo.sim_actors == topo.sim_nodes
        assert topo.sim_scale == 32 / topo.sim_actors

    def test_large_runs_share_one_scale_factor(self):
        """Node ratios between components are preserved exactly."""
        topo = Topology(nsim=8192, nana=4096, nservers=512,
                        sim_ranks_per_node=8, ana_ranks_per_node=8,
                        servers_per_node=1, max_actor_nodes=32)
        k = topo.node_scale
        assert k == 32  # 1024 sim nodes / 32
        assert topo.sim_actors == 32
        assert topo.ana_actors == 16
        assert topo.server_actors == 16
        # Ratio preservation: actors mirror node ratios.
        assert topo.sim_actors / topo.ana_actors == topo.sim_nodes / topo.ana_nodes

    def test_actor_cap_respected(self):
        topo = Topology(nsim=100000, nana=50000, nservers=1000,
                        max_actor_nodes=16)
        assert topo.sim_actors <= 16
        assert topo.ana_actors <= 16

    def test_zero_servers(self):
        topo = Topology(nsim=8, nana=4, nservers=0)
        assert topo.server_actors == 0
        assert topo.server_scale == 1.0

    def test_scales_multiply_back(self):
        topo = Topology(nsim=8192, nana=4096, nservers=512)
        assert topo.sim_scale * topo.sim_actors == pytest.approx(8192, rel=0.05)
        assert topo.ana_scale * topo.ana_actors == pytest.approx(4096, rel=0.05)
