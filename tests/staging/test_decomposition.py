"""Unit tests for domain decomposition and the N-to-1 diagnosis."""

import pytest
from hypothesis import given, strategies as st

from repro.staging.decomposition import (
    access_plan,
    application_decomposition,
    is_n_to_one,
    region_to_server,
    servers_touched,
    split_along,
    staging_partition,
)
from repro.staging.ndarray import Region, Variable


class TestSplitAlong:
    def test_even_split(self):
        regions = split_along((4, 8), axis=1, parts=4)
        assert [r.shape for r in regions] == [(4, 2)] * 4
        assert regions[0].lb == (0, 0)
        assert regions[3].ub == (4, 8)

    def test_uneven_split_distributes_remainder(self):
        regions = split_along((10,), axis=0, parts=3)
        assert [r.shape[0] for r in regions] == [4, 3, 3]

    def test_split_covers_domain_disjointly(self):
        regions = split_along((7, 13), axis=1, parts=5)
        total = sum(r.num_elements for r in regions)
        assert total == 7 * 13
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert a.intersect(b) is None

    def test_parts_capped_by_extent(self):
        regions = split_along((3,), axis=0, parts=10)
        assert len(regions) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split_along((4,), axis=1, parts=2)
        with pytest.raises(ValueError):
            split_along((4,), axis=0, parts=0)

    @given(
        st.integers(1, 200),
        st.integers(1, 16),
    )
    def test_property_cover_and_disjoint(self, extent, parts):
        regions = split_along((extent,), axis=0, parts=parts)
        covered = sorted((r.lb[0], r.ub[0]) for r in regions)
        assert covered[0][0] == 0
        assert covered[-1][1] == extent
        for (l1, u1), (l2, u2) in zip(covered, covered[1:]):
            assert u1 == l2


class TestStagingPartition:
    def test_power_of_two_regions_in_longest_dim(self):
        # LAMMPS: 5 x nprocs x 512000 — longest dim is the third.
        var = Variable("atoms", (5, 32, 512000))
        partition = staging_partition(var, num_servers=3)
        assert len(partition) == 4  # 2^ceil(log2(3))
        assert all(r.shape[0] == 5 and r.shape[1] == 32 for r in partition)

    def test_exact_power_of_two(self):
        var = Variable("x", (1024,))
        assert len(staging_partition(var, num_servers=8)) == 8

    def test_single_server(self):
        var = Variable("x", (100,))
        partition = staging_partition(var, 1)
        assert partition == [Region((0,), (100,))]

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            staging_partition(Variable("x", (8,)), 0)


class TestRegionToServer:
    def test_sequential_wrap(self):
        assert [region_to_server(i, 8, 4) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            region_to_server(8, 8, 4)


class TestAccessPlan:
    def test_mismatched_layout_touches_all_servers(self):
        """Figure 8a: decomposition in dim 2, partition along dim 3."""
        var = Variable("atoms", (5, 4, 512000))
        partition = staging_partition(var, num_servers=4)
        procs = application_decomposition(var, nprocs=4, axis=1)
        plans = [access_plan(p, partition, 4) for p in procs]
        # Every processor's plan touches every server, starting at server 0.
        for plan in plans:
            assert servers_touched(plan) == [0, 1, 2, 3]
        assert is_n_to_one(plans, 4)

    def test_matched_layout_spreads_servers(self):
        """Figure 8b: partition dimension matches the scaling dimension."""
        var = Variable("atoms", (5, 512, 4000))
        # Make the scaled dimension longest: 5 x 512 x (1000*nprocs).
        var = Variable("atoms", (5, 512, 1000 * 16))
        partition = staging_partition(var, num_servers=4)
        procs = application_decomposition(var, nprocs=16, axis=2)
        plans = [access_plan(p, partition, 4) for p in procs]
        first_targets = {plan[0][0] for plan in plans}
        assert len(first_targets) == 4
        assert not is_n_to_one(plans, 4)

    def test_plan_regions_cover_local_region(self):
        var = Variable("x", (64, 64))
        partition = staging_partition(var, num_servers=4)
        local = Region((10, 0), (20, 64))
        plan = access_plan(local, partition, 4)
        assert sum(r.num_elements for _, r in plan) == local.num_elements

    def test_n_to_one_trivially_false_for_single_server(self):
        assert not is_n_to_one([[(0, Region((0,), (1,)))]], 1)

    def test_n_to_one_false_for_empty(self):
        assert not is_n_to_one([], 4)
