"""Integration-style unit tests for the five staging libraries.

Each test drives real coroutine writers/readers through a library on a
simulated machine, moving real numpy payloads where correctness is the
point and plain sizes where behaviour/limits are the point.
"""

import numpy as np
import pytest

from repro.hpc import (
    CORI,
    Cluster,
    DrcOverload,
    MB,
    OutOfMemory,
    OutOfRdmaHandlers,
    OutOfRdmaMemory,
    OutOfSockets,
    SchedulerPolicyViolation,
    TITAN,
)
from repro.sim import Environment
from repro.staging import (
    StagingConfig,
    Topology,
    Variable,
    application_decomposition,
    make_library,
)

# One rank per node => actors == real processors: full-fidelity runs.
SMALL_ACTORS = dict(sim_ranks_per_node=1, ana_ranks_per_node=1)


def run_workflow(method, machine=TITAN, nsim=8, nana=4, steps=2, dims=None,
                 with_data=True, axis=1, **make_kwargs):
    """Drive a small coupled run; returns (env, lib, results dict)."""
    env = Environment()
    cluster = Cluster(env, machine)
    if dims is None:
        dims = (4, max(nsim, 8), 100)
    var = Variable("field", dims)
    make_kwargs.setdefault("topology_overrides", dict(SMALL_ACTORS))
    lib = make_library(method, cluster, nsim=nsim, nana=nana, variable=var,
                       steps=steps, **make_kwargs)
    topo = lib.topology
    write_regions = application_decomposition(var, topo.sim_actors, axis)
    read_regions = application_decomposition(var, topo.ana_actors, axis)
    rng = np.random.default_rng(42)
    full = rng.random(var.dims) if with_data else None
    results = {}

    def writer(actor):
        for v in range(steps):
            payload = None
            if with_data:
                payload = full[write_regions[actor].local_slices(var.bounds)] + v
            yield env.process(lib.put(actor, write_regions[actor], v, data=payload))

    def reader(actor):
        for v in range(steps):
            total, data = yield env.process(lib.get(actor, read_regions[actor], v))
            results[(actor, v)] = (total, data)

    def main(env):
        yield env.process(lib.bootstrap())
        procs = [env.process(writer(i)) for i in range(topo.sim_actors)]
        procs += [env.process(reader(i)) for i in range(topo.ana_actors)]
        yield env.all_of(procs)

    env.process(main(env))
    env.run()
    if with_data:
        for (actor, v), (total, data) in results.items():
            expected = full[read_regions[actor].local_slices(var.bounds)] + v
            np.testing.assert_allclose(data, expected)
    return env, lib, results


ALL_METHODS = ["dataspaces", "dataspaces-adios", "dimes", "dimes-adios",
               "flexpath", "decaf", "mpiio"]


class TestDataRoundTrip:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_roundtrip_titan(self, method):
        env, lib, results = run_workflow(method)
        assert lib.stats.puts == lib.topology.sim_actors * 2
        assert lib.stats.gets == lib.topology.ana_actors * 2
        assert lib.stats.bytes_staged > 0

    @pytest.mark.parametrize("method", ["dataspaces", "flexpath", "decaf"])
    def test_roundtrip_cori(self, method):
        run_workflow(method, machine=CORI)

    def test_sizes_only_mode(self):
        env, lib, results = run_workflow("dataspaces", with_data=False)
        for (actor, v), (total, data) in results.items():
            assert data is None
            assert total > 0


class TestVersionCoupling:
    def test_writer_cannot_run_ahead(self):
        """max_versions=1: version v+1 waits for v's consumption."""
        env, lib, _ = run_workflow("dataspaces", steps=3)
        # All steps completed despite the window — coupling, not deadlock.
        assert lib.stats.puts == lib.topology.sim_actors * 3

    def test_flexpath_queue_size_two_runs(self):
        config = StagingConfig(transport="nnti", use_adios=True, queue_size=2)
        env, lib, _ = run_workflow("flexpath", steps=3, config=config)
        assert lib.gate.window == 2


class TestServerSizing:
    def test_dataspaces_paper_default(self):
        env, lib, _ = run_workflow("dataspaces", nsim=128, nana=64)
        assert lib.topology.nservers == 8  # 64 analytics / 8

    def test_dimes_always_four_metadata_servers(self):
        env, lib, _ = run_workflow("dimes", nsim=128, nana=64)
        assert lib.topology.nservers == 4

    def test_decaf_one_dflow_per_analytics_proc(self):
        env, lib, _ = run_workflow("decaf", nsim=128, nana=64)
        assert lib.topology.nservers == 64

    def test_flexpath_and_mpiio_serverless(self):
        for method in ("flexpath", "mpiio"):
            env, lib, _ = run_workflow(method)
            assert lib.topology.nservers == 0
            assert lib.servers == []

    def test_server_count_override(self):
        env, lib, _ = run_workflow("dataspaces", nsim=128, nana=64, num_servers=16)
        assert lib.topology.nservers == 16


class TestServerMemory:
    def test_dataspaces_server_memory_includes_index_and_buffering(self):
        env, lib, _ = run_workflow("dataspaces", nsim=16, nana=8)
        server = lib.servers[0]
        breakdown = server.memory.by_category
        assert breakdown.get("index", 0) > 0
        assert server.memory.peak > 0

    def test_decaf_seven_x_expansion(self):
        env, lib, _ = run_workflow("decaf", nsim=8, nana=4, with_data=False)
        var_bytes = 4 * 8 * 100 * 8
        staged = sum(s.memory.category_total("staged-rich") for s in lib.servers)
        # Trackers report real per-server bytes: the live version holds
        # 7x the raw bytes spread over the real servers, of which the
        # actors represent 1/server_scale.
        expected = 7 * var_bytes / lib.topology.server_scale
        assert staged == pytest.approx(expected, rel=0.01)

    def test_dimes_servers_metadata_only(self):
        env, lib, _ = run_workflow("dimes", nsim=16, nana=8)
        for server in lib.servers:
            assert server.memory.category_total("staged") == 0
            assert server.memory.category_total("metadata") > 0

    def test_old_versions_evicted(self):
        env, lib, _ = run_workflow("dataspaces", steps=3, with_data=False)
        var = lib.variable
        # Only the newest version may remain staged (max_versions=1).
        assert lib.global_store.versions(var) == [2]


class TestAtScaleValidation:
    def test_dataspaces_out_of_rdma_memory_large_problem(self):
        """Figure 3: 128 MB/proc with default servers exhausts RDMA."""
        with pytest.raises(OutOfRdmaMemory):
            run_workflow(
                "dataspaces", nsim=1024, nana=512,
                dims=(4096, 1024, 4096), with_data=False,
            )

    def test_dataspaces_doubling_servers_fixes_rdma(self):
        """The paper's remediation: double the staging servers."""
        run_workflow(
            "dataspaces", nsim=1024, nana=512, num_servers=128,
            dims=(4096, 1024, 4096), with_data=False, steps=1,
        )

    def test_dimes_out_of_rdma_memory_client_side(self):
        """DIMES pins staged data in simulation-node memory."""
        with pytest.raises(OutOfRdmaMemory):
            run_workflow(
                "dimes", nsim=1024, nana=512,
                dims=(4096, 1024, 4096), with_data=False,
                topology_overrides=dict(
                    sim_ranks_per_node=16, ana_ranks_per_node=8
                ),
            )

    def test_rdma_handler_exhaustion_at_largest_scale(self):
        """The (8192, 4096) Titan failure: too many live handlers."""
        with pytest.raises(OutOfRdmaHandlers):
            run_workflow(
                "dimes", nsim=8192, nana=4096,
                dims=(5, 8192, 512000), with_data=False,
                topology_overrides={},  # the paper's 8 ranks/node
            )

    def test_drc_overload_on_cori_at_largest_scale(self):
        """Both workflows fail at (8192, 4096) on Cori via DRC."""
        with pytest.raises(DrcOverload):
            run_workflow(
                "dataspaces", machine=CORI, nsim=8192, nana=4096,
                dims=(5, 8192, 512000), with_data=False,
            )

    def test_no_drc_issue_at_medium_scale_on_cori(self):
        run_workflow(
            "dataspaces", machine=CORI, nsim=2048, nana=1024,
            dims=(5, 2048, 51200), with_data=False, steps=1,
        )

    def test_socket_exhaustion_beyond_1024_512(self):
        """Figure 10: socket descriptors deplete beyond (1024, 512)."""
        with pytest.raises(OutOfSockets):
            run_workflow(
                "dataspaces", transport="tcp", nsim=2048, nana=1024,
                dims=(5, 2048, 51200), with_data=False,
            )

    def test_sockets_ok_at_1024_512(self):
        run_workflow(
            "dataspaces", transport="tcp", nsim=1024, nana=512,
            dims=(5, 1024, 51200), with_data=False, steps=1,
        )

    def test_decaf_oom_on_extreme_dataset(self):
        """Table IV: Decaf's 7x expansion can exceed node RAM."""
        with pytest.raises(OutOfMemory):
            run_workflow(
                "decaf", nsim=64, nana=32,
                # ~640 MB/proc raw -> x7 x8 servers/node >> 32 GB
                dims=(4096, 64, 20480), with_data=False,
            )


class TestSchedulingPolicies:
    def test_shared_nodes_rejected_on_titan(self):
        with pytest.raises(SchedulerPolicyViolation):
            run_workflow("flexpath", machine=TITAN, shared_nodes=True)

    def test_shared_nodes_allowed_on_cori(self):
        # Shared mode spreads both components over the same node set
        # (2 sim + 1 analytics rank per node), so every reader is
        # co-located with the writers of its region.
        env, lib, _ = run_workflow(
            "flexpath", machine=CORI, shared_nodes=True, transport="shm",
            nsim=8, nana=4,
            topology_overrides=dict(sim_ranks_per_node=2, ana_ranks_per_node=1),
        )
        assert lib.shared_nodes

    def test_decaf_shared_mode_needs_heterogeneous_launch(self):
        """Finding 5: Cori lacks MPMD, so Decaf cannot run shared."""
        with pytest.raises(SchedulerPolicyViolation):
            run_workflow("decaf", machine=CORI, shared_nodes=True)


class TestTransportSelection:
    def test_default_transports(self):
        env, lib, _ = run_workflow("dataspaces")
        assert lib.transport.name == "ugni"
        env, lib, _ = run_workflow("flexpath")
        assert lib.transport.name == "nnti"
        env, lib, _ = run_workflow("decaf")
        assert lib.transport.name == "mpi"

    def test_socket_override(self):
        env, lib, _ = run_workflow("dataspaces", transport="tcp")
        assert lib.transport.name == "tcp"

    def test_socket_slower_than_rdma(self):
        env_rdma, _, _ = run_workflow("dataspaces", dims=(64, 8, 10000),
                                      with_data=False)
        env_tcp, _, _ = run_workflow("dataspaces", transport="tcp",
                                     dims=(64, 8, 10000), with_data=False)
        assert env_tcp.now > env_rdma.now

    def test_decaf_rejects_non_mpi(self):
        with pytest.raises(ValueError):
            run_workflow("decaf", transport="tcp")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            run_workflow("redis")


class TestHashVersion:
    """Table I's hash_version knob: flat DHT (1) vs Hilbert SFC (2)."""

    def test_sfc_index_costs_more_memory(self):
        cfg1 = StagingConfig(transport="ugni", hash_version=1)
        cfg2 = StagingConfig(transport="ugni", hash_version=2)
        env1, lib1, _ = run_workflow("dataspaces", nsim=16, nana=8,
                                     dims=(4096, 16384), with_data=False,
                                     config=cfg1, steps=1)
        env2, lib2, _ = run_workflow("dataspaces", nsim=16, nana=8,
                                     dims=(4096, 16384), with_data=False,
                                     config=cfg2, steps=1)
        index1 = lib1.servers[0].memory.category_total("index")
        index2 = lib2.servers[0].memory.category_total("index")
        assert index2 > 50 * index1

    def test_both_hash_versions_roundtrip_data(self):
        for version in (1, 2):
            cfg = StagingConfig(transport="ugni", hash_version=version)
            run_workflow("dataspaces", config=cfg)
