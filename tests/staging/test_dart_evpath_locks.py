"""Unit tests for the DART substrate, EVPath stones and the lock service."""

import pytest

from repro.hpc import Cluster, MB, TITAN
from repro.sim import Environment
from repro.staging import StagingConfig, VersionGate
from repro.staging.dart import DartError, DartInstance
from repro.staging.evpath import EvpathError, EvpathManager
from repro.staging.locks import LockError, LockService, RwLock
from repro.transport import Endpoint, RdmaTransport, ShmTransport


def setup():
    env = Environment()
    cluster = Cluster(env, TITAN)
    transport = RdmaTransport(cluster, "ugni")
    return env, cluster, transport


class TestDart:
    def test_directory_registration(self):
        env, cluster, transport = setup()
        dart = DartInstance(env, transport)
        server = Endpoint(cluster.node(0), "srv0")
        dart.add_server(0, server)
        assert dart.num_servers == 1
        assert dart.server(0).endpoint is server
        with pytest.raises(DartError):
            dart.add_server(0, server)
        with pytest.raises(DartError):
            dart.server(99)

    def test_client_registration_handshake(self):
        env, cluster, transport = setup()
        dart = DartInstance(env, transport)
        dart.add_server(0, Endpoint(cluster.node(0), "srv0"))
        client = Endpoint(cluster.node(1), "client")

        def proc(env):
            yield from dart.register_client(client, 0)

        env.process(proc(env))
        env.run()
        assert dart.is_registered(client)
        assert dart.server(0).registered_clients == 1
        assert dart.rpcs == 1
        assert env.now > 0

    def test_bulk_put_get_accounting(self):
        env, cluster, transport = setup()
        dart = DartInstance(env, transport)
        dart.add_server(0, Endpoint(cluster.node(0), "srv0"))
        client = Endpoint(cluster.node(1), "client")

        def proc(env):
            yield from dart.bulk_put(client, 0, 10 * MB)
            yield from dart.bulk_get(client, 0, 5 * MB)

        env.process(proc(env))
        env.run()
        assert dart.bulk_ops == 2
        assert dart.bulk_bytes == 15 * MB

    def test_peer_move(self):
        env, cluster, transport = setup()
        dart = DartInstance(env, transport)
        a = Endpoint(cluster.node(0), "a")
        b = Endpoint(cluster.node(1), "b")

        def proc(env):
            yield from dart.peer_move(a, b, 1 * MB)

        env.process(proc(env))
        env.run()
        assert dart.bulk_bytes == 1 * MB


class TestEvpath:
    def test_stone_graph_delivery(self):
        env, cluster, transport = setup()
        manager = EvpathManager(env, transport)
        src = manager.create_stone(Endpoint(cluster.node(0), "pub"))
        seen = []
        sink = manager.create_stone(Endpoint(cluster.node(1), "sub"))
        sink.set_handler(seen.append)
        src.link(sink)

        def proc(env):
            yield from src.submit({"version": 3}, nbytes=128)

        env.process(proc(env))
        env.run()
        assert seen == [{"version": 3}]
        assert sink.events_in == 1
        assert env.now > 0  # the bridge paid network time

    def test_fanout_to_multiple_sinks(self):
        env, cluster, transport = setup()
        manager = EvpathManager(env, transport)
        src = manager.create_stone(Endpoint(cluster.node(0), "pub"))
        counters = []
        for i in range(3):
            sink = manager.create_stone(Endpoint(cluster.node(i + 1), f"sub{i}"))
            sink.set_handler(lambda e, i=i: counters.append(i))
            src.link(sink)

        def proc(env):
            yield from src.submit("ready")

        env.process(proc(env))
        env.run()
        assert sorted(counters) == [0, 1, 2]

    def test_self_link_rejected(self):
        env, cluster, transport = setup()
        manager = EvpathManager(env, transport)
        stone = manager.create_stone(Endpoint(cluster.node(0), "x"))
        with pytest.raises(EvpathError):
            stone.link(stone)

    def test_unknown_stone(self):
        env, cluster, transport = setup()
        manager = EvpathManager(env, transport)
        with pytest.raises(EvpathError):
            manager.stone(5)

    def test_shm_dataplane_uses_tcp_control_channel(self):
        env, cluster, _ = setup()
        manager = EvpathManager(env, ShmTransport(cluster))
        src = manager.create_stone(Endpoint(cluster.node(0), "pub"))
        sink = manager.create_stone(Endpoint(cluster.node(1), "sub"))
        sink.set_handler(lambda e: None)
        src.link(sink)

        def proc(env):
            yield from src.submit("cross-node event")

        env.process(proc(env))
        env.run()  # would raise TransportError without the control channel
        assert sink.events_in == 1


class TestRwLock:
    def test_writer_exclusive(self):
        env = Environment()
        lock = RwLock(env)
        order = []

        def writer(env, name, hold):
            yield from lock.acquire(is_writer=True)
            order.append((name, env.now))
            yield env.timeout(hold)
            lock.release(is_writer=True)

        env.process(writer(env, "w1", 5))
        env.process(writer(env, "w2", 5))
        env.run()
        assert order == [("w1", 0), ("w2", 5)]

    def test_readers_share(self):
        env = Environment()
        lock = RwLock(env)
        times = []

        def reader(env):
            yield from lock.acquire(is_writer=False)
            times.append(env.now)
            yield env.timeout(3)
            lock.release(is_writer=False)

        env.process(reader(env))
        env.process(reader(env))
        env.run()
        assert times == [0, 0]

    def test_fifo_prevents_writer_starvation(self):
        env = Environment()
        lock = RwLock(env)
        order = []

        def reader(env, name, start):
            yield env.timeout(start)
            yield from lock.acquire(is_writer=False)
            order.append((name, env.now))
            yield env.timeout(4)
            lock.release(is_writer=False)

        def writer(env, start):
            yield env.timeout(start)
            yield from lock.acquire(is_writer=True)
            order.append(("w", env.now))
            yield env.timeout(2)
            lock.release(is_writer=True)

        env.process(reader(env, "r1", 0))
        env.process(writer(env, 1))
        env.process(reader(env, "r2", 2))  # arrives after the writer
        env.run()
        # r2 must NOT jump ahead of the queued writer.
        assert order == [("r1", 0), ("w", 4), ("r2", 6)]

    def test_release_unheld_rejected(self):
        env = Environment()
        lock = RwLock(env)
        with pytest.raises(LockError):
            lock.release(is_writer=True)
        with pytest.raises(LockError):
            lock.release(is_writer=False)


class TestLockService:
    def test_invalid_lock_type(self):
        env = Environment()
        with pytest.raises(ValueError):
            LockService(env, lock_type=4)
        with pytest.raises(ValueError):
            LockService(env, lock_type=2, gate=None)

    def test_type2_delegates_to_version_gate(self):
        env = Environment()
        gate = VersionGate(env, num_writers=1, num_readers=1, window=1)
        service = LockService(env, lock_type=2, gate=gate)
        trace = []

        def writer(env):
            for v in range(2):
                yield from service.lock_on_write("x", v)
                trace.append(("w", v, env.now))
                service.unlock_on_write("x", v)

        def reader(env):
            for v in range(2):
                yield from service.lock_on_read("x", v)
                yield env.timeout(10)
                service.unlock_on_read("x", v)

        env.process(writer(env))
        env.process(reader(env))
        env.run()
        # The second write waited for version 0's consumption.
        assert trace[1][2] >= 10

    def test_type3_never_blocks_writers(self):
        env = Environment()
        service = LockService(env, lock_type=3)
        done = []

        def writer(env):
            for v in range(5):
                yield from service.lock_on_write("x", v)
                service.unlock_on_write("x", v)
            done.append(env.now)

        env.process(writer(env))
        env.run()
        assert done and done[0] < 0.01  # only lock RPC latency

    def test_type1_generic_rwlock(self):
        env = Environment()
        service = LockService(env, lock_type=1)
        order = []

        def writer(env):
            yield from service.lock_on_write("x", 0)
            order.append(("w", env.now))
            yield env.timeout(2)
            service.unlock_on_write("x", 0)

        def reader(env):
            yield env.timeout(0.001)
            yield from service.lock_on_read("x", 0)
            order.append(("r", env.now))
            service.unlock_on_read("x", 0)

        env.process(writer(env))
        env.process(reader(env))
        env.run()
        assert order[0][0] == "w"
        assert order[1][1] >= 2
