"""Unit and property tests for the Hilbert SFC index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hpc import GB
from repro.staging.ndarray import Region
from repro.staging.sfc import (
    SfcIndex,
    hilbert_coords,
    hilbert_index,
    index_memory_bytes,
    index_space_bits,
    index_space_cells,
    index_space_extent,
)


class TestHilbertCurve:
    def test_2d_order1_visits_all_cells(self):
        visited = {hilbert_index((x, y), 1) for x in range(2) for y in range(2)}
        assert visited == {0, 1, 2, 3}

    def test_2d_order2_is_bijective(self):
        seen = {}
        for x in range(4):
            for y in range(4):
                h = hilbert_index((x, y), 2)
                assert h not in seen
                seen[h] = (x, y)
        assert sorted(seen) == list(range(16))

    def test_roundtrip_2d(self):
        for x in range(8):
            for y in range(8):
                h = hilbert_index((x, y), 3)
                assert hilbert_coords(h, 2, 3) == (x, y)

    def test_adjacency_2d(self):
        """Consecutive curve positions are grid neighbors (the locality
        property that makes SFC useful for spatial indexing)."""
        coords = [hilbert_coords(h, 2, 3) for h in range(64)]
        for a, b in zip(coords, coords[1:]):
            manhattan = abs(a[0] - b[0]) + abs(a[1] - b[1])
            assert manhattan == 1

    def test_3d_roundtrip(self):
        for x in range(4):
            for y in range(4):
                for z in range(4):
                    h = hilbert_index((x, y, z), 2)
                    assert hilbert_coords(h, 3, 2) == (x, y, z)

    def test_out_of_range_coordinate(self):
        with pytest.raises(ValueError):
            hilbert_index((4, 0), 2)

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            hilbert_coords(16, 2, 2)

    @given(
        st.integers(1, 5),
        st.data(),
    )
    @settings(max_examples=60)
    def test_property_roundtrip(self, bits, data):
        ndim = data.draw(st.integers(1, 4))
        coords = tuple(
            data.draw(st.integers(0, (1 << bits) - 1)) for _ in range(ndim)
        )
        h = hilbert_index(coords, bits)
        assert 0 <= h < (1 << (bits * ndim))
        assert hilbert_coords(h, ndim, bits) == coords

    @given(st.integers(2, 4))
    @settings(max_examples=10)
    def test_property_adjacency(self, bits):
        coords = [hilbert_coords(h, 2, bits) for h in range(1 << (2 * bits))]
        for a, b in zip(coords, coords[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


class TestIndexSpace:
    def test_bits_strictly_greater(self):
        # Paper: 2^k strictly greater than the longest dimension, so a
        # 4096 x 131072 domain pads to 262144 x 262144.
        assert index_space_extent((4096, 131072)) == 262144

    def test_bits_power_of_two_input(self):
        assert index_space_extent((1024,)) == 2048

    def test_cells(self):
        assert index_space_cells((4, 4)) == 64  # padded to 8 x 8

    def test_paper_fig6_magnitude(self):
        """The 64-processor Laplace case: ~GBs of index per server."""
        dims = (4096, 64 * 2048)
        per_server = index_memory_bytes(dims, num_servers=4)
        assert 3 * GB < per_server < 8 * GB

    def test_index_memory_quadratic_in_2d(self):
        small = index_memory_bytes((256, 256), 4)
        # Doubling the domain side once the padding threshold is crossed
        # quadruples the cells.
        big = index_memory_bytes((512, 512), 4)
        assert big == pytest.approx(4 * small)

    def test_more_servers_never_costs_more_per_server(self):
        dims = (1024, 65536)
        costs = [index_memory_bytes(dims, n) for n in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))
        # Enough servers shrink the padded subdomain and the cost drops.
        assert costs[-1] < costs[0]

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            index_memory_bytes((4,), 0)


class TestSfcIndex:
    def test_server_assignment_in_range(self):
        index = SfcIndex((100, 100), num_servers=4)
        for x in range(0, 100, 7):
            for y in range(0, 100, 7):
                assert 0 <= index.server_of((x, y)) < 4

    def test_all_servers_used(self):
        index = SfcIndex((64, 64), num_servers=4)
        used = {
            index.server_of((x, y))
            for x in range(0, 64, 4)
            for y in range(0, 64, 4)
        }
        assert used == {0, 1, 2, 3}

    def test_whole_domain_region_touches_all_servers(self):
        index = SfcIndex((64, 64), num_servers=4)
        servers = index.servers_for_region(Region((0, 0), (64, 64)))
        assert servers == [0, 1, 2, 3]

    def test_small_region_touches_few_servers(self):
        index = SfcIndex((64, 64), num_servers=16)
        servers = index.servers_for_region(Region((0, 0), (4, 4)))
        assert len(servers) <= 2  # SFC locality keeps it small

    def test_memory_bytes_delegates_to_model(self):
        index = SfcIndex((1024, 1024), num_servers=4)
        assert index.memory_bytes == index_memory_bytes((1024, 1024), 4)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SfcIndex((4,), 0)
        with pytest.raises(ValueError):
            SfcIndex((4,), 2, buckets_per_dim=0)
