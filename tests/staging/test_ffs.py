"""Unit and property tests for the FFS self-describing serializer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.staging import ffs
from repro.staging.ffs import FfsError, decode, encode, encoded_size


def test_roundtrip_single_field():
    record = {"positions": np.arange(12, dtype=np.float64).reshape(3, 4)}
    out = decode(encode(record))
    np.testing.assert_array_equal(out["positions"], record["positions"])


def test_roundtrip_multiple_fields_and_dtypes():
    record = {
        "x": np.random.default_rng(0).random(7),
        "ids": np.arange(7, dtype=np.int64),
        "flags": np.array([0, 1, 1], dtype=np.uint8),
        "f32": np.float32([[1.5, 2.5]]),
    }
    out = decode(encode(record))
    assert set(out) == set(record)
    for name in record:
        np.testing.assert_array_equal(out[name], record[name])
        assert out[name].dtype == record[name].dtype


def test_self_describing_no_external_schema():
    buffer = encode({"field": np.zeros((2, 3, 4))})
    out = decode(buffer)
    assert out["field"].shape == (2, 3, 4)


def test_encoded_size_matches_actual():
    record = {"a": np.zeros((5, 5)), "bb": np.arange(3, dtype=np.int32)}
    assert encoded_size(record) == len(encode(record))


def test_bad_magic_rejected():
    with pytest.raises(FfsError):
        decode(b"XXXX" + b"\x00" * 16)


def test_truncated_payload_rejected():
    buffer = encode({"a": np.zeros(10)})
    with pytest.raises(FfsError):
        decode(buffer[:-8])


def test_unsupported_dtype_rejected():
    with pytest.raises(FfsError):
        encode({"s": np.array(["a", "b"])})


def test_non_contiguous_input_handled():
    base = np.arange(24, dtype=np.float64).reshape(4, 6)
    view = base[:, ::2]  # non-contiguous
    out = decode(encode({"v": view}))
    np.testing.assert_array_equal(out["v"], view)


@given(
    st.lists(
        st.tuples(
            st.text(alphabet="abcdefgh", min_size=1, max_size=8),
            st.integers(1, 5),
            st.integers(1, 5),
        ),
        min_size=1,
        max_size=4,
        unique_by=lambda t: t[0],
    ),
    st.randoms(),
)
@settings(max_examples=50)
def test_property_roundtrip(fields, rnd):
    rng = np.random.default_rng(rnd.randint(0, 2**31))
    record = {
        name: rng.random((rows, cols)) for name, rows, cols in fields
    }
    out = decode(encode(record))
    assert set(out) == set(record)
    for name in record:
        np.testing.assert_array_equal(out[name], record[name])
