"""Property-based tests for VersionGate schedules and FragmentStore.

Hypothesis generates arbitrary interleavings of writer/reader progress
and random region tilings; the invariants under test are the ones every
staging library relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.staging import FragmentStore, Region, Variable, VersionGate


class TestVersionGateProperties:
    @given(
        num_writers=st.integers(1, 4),
        num_readers=st.integers(1, 4),
        window=st.integers(1, 3),
        steps=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_deadlock_and_window_respected(
        self, num_writers, num_readers, window, steps, seed
    ):
        """Any writer/reader timing: the run completes and no version is
        ever staged more than `window` ahead of consumption."""
        env = Environment()
        gate = VersionGate(env, num_writers, num_readers, window)
        rng = np.random.default_rng(seed)
        write_times = []

        def writer(env, delays):
            for v in range(steps):
                yield env.timeout(delays[v])
                yield from gate.writer_acquire(v)
                # The window invariant at the moment of acquisition:
                assert v <= gate.consumed + window
                write_times.append((v, env.now))
                gate.publish(v)

        def reader(env, delays):
            for v in range(steps):
                yield from gate.reader_wait(v)
                yield env.timeout(delays[v])
                gate.reader_done(v)

        for _ in range(num_writers):
            env.process(writer(env, rng.random(steps) * 3))
        for _ in range(num_readers):
            env.process(reader(env, rng.random(steps) * 3))
        env.run()
        # Every version was written by every writer.
        assert len(write_times) == steps * num_writers
        assert gate.consumed == steps - 1

    @given(
        window=st.integers(1, 4),
        steps=st.integers(2, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_versions_consumed_in_order(self, window, steps):
        env = Environment()
        gate = VersionGate(env, 1, 1, window)
        consumed_order = []

        def writer(env):
            for v in range(steps):
                yield from gate.writer_acquire(v)
                gate.publish(v)

        def reader(env):
            for v in range(steps):
                yield from gate.reader_wait(v)
                yield env.timeout(1)
                gate.reader_done(v)
                consumed_order.append(v)

        env.process(writer(env))
        env.process(reader(env))
        env.run()
        assert consumed_order == list(range(steps))


class TestFragmentStoreProperties:
    @given(
        rows=st.integers(2, 12),
        cols=st.integers(2, 12),
        splits=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_tiling_reassembles_exactly(self, rows, cols, splits, seed):
        """Staging a variable as arbitrary row-slabs always reassembles
        into the original array, for any requested sub-region."""
        rng = np.random.default_rng(seed)
        var = Variable("v", (rows, cols))
        data = rng.random((rows, cols))
        store = FragmentStore()

        # Random contiguous row tiling.
        cuts = sorted(set([0, rows] + list(rng.integers(1, rows, size=splits))))
        for lo, hi in zip(cuts, cuts[1:]):
            region = Region((lo, 0), (hi, cols))
            store.put(var, 0, region, data[lo:hi, :])

        assert store.covered(var, 0, var.bounds)
        # A random query region.
        r0 = int(rng.integers(0, rows - 1))
        r1 = int(rng.integers(r0 + 1, rows))
        c0 = int(rng.integers(0, cols - 1))
        c1 = int(rng.integers(c0 + 1, cols))
        query = Region((r0, c0), (r1, c1))
        out = store.assemble(var, 0, query)
        np.testing.assert_array_equal(out, data[r0:r1, c0:c1])

    @given(
        rows=st.integers(2, 10),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_eviction_returns_exact_bytes(self, rows, seed):
        rng = np.random.default_rng(seed)
        var = Variable("v", (rows, 4))
        store = FragmentStore()
        total = 0
        for version in range(3):
            store.put(var, version, var.bounds)
            total += var.nbytes
        released = sum(store.evict(var, v) for v in range(3))
        assert released == total
        assert store.versions(var) == []
