"""Unit tests for FragmentStore and VersionGate."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.staging import FragmentStore, Region, Variable, VersionGate


class TestFragmentStore:
    def make(self):
        return FragmentStore(), Variable("v", (4, 8))

    def test_put_and_bytes(self):
        store, var = self.make()
        store.put(var, 0, Region((0, 0), (4, 4)))
        assert store.bytes_stored(var, 0) == 4 * 4 * 8

    def test_coverage_detection(self):
        store, var = self.make()
        store.put(var, 0, Region((0, 0), (4, 4)))
        assert not store.covered(var, 0, var.bounds)
        store.put(var, 0, Region((0, 4), (4, 8)))
        assert store.covered(var, 0, var.bounds)

    def test_assemble_roundtrip(self):
        store, var = self.make()
        data = np.arange(32, dtype=float).reshape(4, 8)
        store.put(var, 0, Region((0, 0), (4, 4)), data[:, :4])
        store.put(var, 0, Region((0, 4), (4, 8)), data[:, 4:])
        out = store.assemble(var, 0, Region((1, 2), (3, 6)))
        np.testing.assert_array_equal(out, data[1:3, 2:6])

    def test_assemble_uncovered_raises(self):
        store, var = self.make()
        store.put(var, 0, Region((0, 0), (4, 4)))
        with pytest.raises(KeyError):
            store.assemble(var, 0, var.bounds)

    def test_assemble_sizes_only_returns_none(self):
        store, var = self.make()
        store.put(var, 0, var.bounds, None)
        assert store.assemble(var, 0, var.bounds) is None

    def test_data_shape_validated(self):
        store, var = self.make()
        with pytest.raises(ValueError):
            store.put(var, 0, Region((0, 0), (2, 2)), np.zeros((3, 3)))

    def test_evict_releases_bytes(self):
        store, var = self.make()
        store.put(var, 0, var.bounds)
        released = store.evict(var, 0)
        assert released == var.nbytes
        assert store.bytes_stored(var, 0) == 0
        assert store.evict(var, 0) == 0

    def test_versions_listed(self):
        store, var = self.make()
        store.put(var, 2, var.bounds)
        store.put(var, 0, var.bounds)
        assert store.versions(var) == [0, 2]


class TestVersionGate:
    def test_invalid_construction(self):
        env = Environment()
        with pytest.raises(ValueError):
            VersionGate(env, 1, 1, window=0)
        with pytest.raises(ValueError):
            VersionGate(env, 0, 1)

    def test_reader_waits_for_all_writers(self):
        env = Environment()
        gate = VersionGate(env, num_writers=2, num_readers=1)
        read_at = []

        def writer(env, delay):
            yield env.timeout(delay)
            gate.publish(0)

        def reader(env):
            yield from gate.reader_wait(0)
            read_at.append(env.now)
            gate.reader_done(0)

        env.process(writer(env, 1))
        env.process(writer(env, 5))
        env.process(reader(env))
        env.run()
        assert read_at == [5]

    def test_window_blocks_writer(self):
        env = Environment()
        gate = VersionGate(env, num_writers=1, num_readers=1, window=1)
        trace = []

        def writer(env):
            for v in range(3):
                yield from gate.writer_acquire(v)
                trace.append(("w", v, env.now))
                gate.publish(v)

        def reader(env):
            for v in range(3):
                yield from gate.reader_wait(v)
                yield env.timeout(10)
                gate.reader_done(v)
                trace.append(("r", v, env.now))

        env.process(writer(env))
        env.process(reader(env))
        env.run()
        writes = [(v, t) for kind, v, t in trace if kind == "w"]
        # v0 writes immediately; v1 must wait until v0 consumed (t=10);
        # v2 until v1 consumed (t=20).
        assert writes == [(0, 0), (1, 10), (2, 20)]

    def test_larger_window_decouples(self):
        env = Environment()
        gate = VersionGate(env, num_writers=1, num_readers=1, window=3)
        writes = []

        def writer(env):
            for v in range(3):
                yield from gate.writer_acquire(v)
                writes.append((v, env.now))
                gate.publish(v)

        def reader(env):
            for v in range(3):
                yield from gate.reader_wait(v)
                yield env.timeout(10)
                gate.reader_done(v)

        env.process(writer(env))
        env.process(reader(env))
        env.run()
        assert writes == [(0, 0), (1, 0), (2, 0)]

    def test_consumed_tracks_slowest_reader(self):
        env = Environment()
        gate = VersionGate(env, num_writers=1, num_readers=2)

        def writer(env):
            yield from gate.writer_acquire(0)
            gate.publish(0)

        def reader(env, delay):
            yield from gate.reader_wait(0)
            yield env.timeout(delay)
            gate.reader_done(0)

        env.process(writer(env))
        env.process(reader(env, 1))
        env.process(reader(env, 7))
        env.run()
        assert gate.consumed == 0
        assert env.now == 7
