"""The SST-style streaming library: pacing, discard, and certificates.

Covers the sixth (beyond-the-paper) scenario family end to end: data
round-trips under both queue policies, reader pacing as real
backpressure, latest-step-wins discard semantics, and the honest
fidelity certificates — engage where the structural proof holds,
decline with a recorded reason where it does not, and fall back
bit-identically to the exact run either way.
"""

import numpy as np
import pytest

from repro.core import runcache
from repro.hpc import Cluster, TITAN
from repro.sim import Environment
from repro.staging import (
    StagingConfig,
    Variable,
    application_decomposition,
    make_library,
)
from repro.workflows import run_coupled

SMALL_ACTORS = dict(sim_ranks_per_node=1, ana_ranks_per_node=1)

CELL = dict(
    workflow="lammps", nsim=8, nana=4, steps=5,
    topology_overrides=dict(SMALL_ACTORS),
)


@pytest.fixture(autouse=True)
def fresh_cache():
    runcache.clear()
    yield
    runcache.clear()


def _config(**knobs):
    knobs.setdefault("use_adios", True)
    return StagingConfig(**knobs)


def run_sst(machine=TITAN, nsim=4, nana=2, steps=4, reader_delay=0.0,
            config=None, with_data=True):
    """Drive writers/readers through Sst directly; (env, lib, results)."""
    env = Environment()
    cluster = Cluster(env, machine)
    var = Variable("field", (4, 8, 100))
    lib = make_library(
        "sst", cluster, nsim=nsim, nana=nana, variable=var, steps=steps,
        config=config or _config(transport="ugni"),
        topology_overrides=dict(SMALL_ACTORS),
    )
    topo = lib.topology
    write_regions = application_decomposition(var, topo.sim_actors, 1)
    read_regions = application_decomposition(var, topo.ana_actors, 1)
    rng = np.random.default_rng(42)
    full = rng.random(var.dims) if with_data else None
    results = {}

    def writer(actor):
        for v in range(steps):
            payload = None
            if with_data:
                payload = full[write_regions[actor].local_slices(var.bounds)] + v
            yield env.process(lib.put(actor, write_regions[actor], v,
                                      data=payload))

    def reader(actor):
        for v in range(steps):
            if reader_delay:
                yield env.pause(reader_delay)
            total, data = yield env.process(
                lib.get(actor, read_regions[actor], v)
            )
            results[(actor, v)] = (total, data)

    def main(env):
        yield env.process(lib.bootstrap())
        procs = [env.process(writer(i)) for i in range(topo.sim_actors)]
        procs += [env.process(reader(i)) for i in range(topo.ana_actors)]
        yield env.all_of(procs)

    env.process(main(env))
    env.run()
    if with_data:
        for (actor, v), (total, data) in results.items():
            if data is None:
                continue  # a discarded step: the reader observed the skip
            expected = full[read_regions[actor].local_slices(var.bounds)] + v
            np.testing.assert_allclose(data, expected)
    return env, lib, results


class TestStreamingSemantics:
    def test_paced_roundtrip_delivers_every_step(self):
        env, lib, results = run_sst()
        assert lib.stats.puts == lib.topology.sim_actors * 4
        assert lib.steps_discarded == 0
        assert all(data is not None for _, data in results.values())

    def test_pacing_window_is_the_queue_depth(self):
        _, q1, _ = run_sst(config=_config(transport="ugni"))
        _, q4, _ = run_sst(config=_config(transport="ugni", queue_size=4))
        assert q1.gate.window == 1
        assert q4.gate.window == 4

    def test_slow_reader_blocks_the_paced_writer(self):
        """Backpressure: a deeper queue absorbs more reader lag."""
        shallow, lib1, _ = run_sst(steps=6, reader_delay=5.0)
        deep, lib4, _ = run_sst(
            steps=6, reader_delay=5.0,
            config=_config(transport="ugni", queue_size=4),
        )
        assert lib1.stats.put_time > lib4.stats.put_time
        assert lib1.steps_discarded == lib4.steps_discarded == 0

    def test_discard_drops_stale_steps_for_a_slow_reader(self):
        """Latest-step-wins: the writer never blocks; unconsumed steps
        fall off the queue and the reader observes the skips."""
        env, lib, results = run_sst(
            steps=6, reader_delay=5.0,
            config=_config(transport="ugni", sst_discard=True),
        )
        assert lib.steps_discarded > 0
        skipped = [k for k, (total, data) in results.items()
                   if data is None and total == 0.0]
        assert len(skipped) > 0
        # The freshest step always survives (never discarded).
        last = max(v for _, v in results)
        assert all(results[(a, last)][1] is not None
                   for a in range(lib.topology.ana_actors))

    def test_discard_writer_is_faster_than_paced_writer(self):
        _, paced, _ = run_sst(steps=6, reader_delay=5.0)
        _, discard, _ = run_sst(
            steps=6, reader_delay=5.0,
            config=_config(transport="ugni", sst_discard=True),
        )
        assert discard.stats.put_time < paced.stats.put_time

    def test_keeping_pace_discards_nothing(self):
        env, lib, results = run_sst(
            config=_config(transport="ugni", sst_discard=True)
        )
        assert lib.steps_discarded == 0
        assert all(data is not None for _, data in results.values())


def _coupled(machine, fidelity, **overrides):
    kwargs = dict(CELL)
    config_knobs = overrides.pop("config_knobs", {})
    transport = "mpi" if machine == "cori" else "ugni"
    kwargs.update(overrides)
    return run_coupled(
        machine=machine, method="sst",
        config=_config(transport=transport, **config_knobs),
        fidelity=fidelity, **kwargs,
    )


class TestFidelityCertificates:
    def test_cori_mpi_engages_both_reductions(self):
        """Dragonfly hops are uniform and MPI needs no DRC: the stream
        groups are provably identical, so clustering + steady engage."""
        result = _coupled("cori", "steady+clustered")
        assert result.ok
        assert result.fidelity == "steady+clustered"
        assert result.fidelity_fallback is None

    def test_cori_engagement_is_bit_identical_to_exact(self):
        reduced = _coupled("cori", "steady+clustered")
        exact = _coupled("cori", "exact")
        assert reduced.end_to_end == exact.end_to_end
        assert reduced.put_time == exact.put_time
        assert reduced.get_time == exact.get_time
        assert reduced.bytes_staged == exact.bytes_staged

    def test_titan_torus_declines_clustering(self):
        """Unequal hop counts across the torus break the one-group-
        stands-for-all proof; steady still engages on its own."""
        result = _coupled("titan", "steady+clustered")
        assert result.ok
        assert result.fidelity == "steady"

    def test_titan_decline_falls_back_bit_identically(self):
        declined = _coupled("titan", "steady+clustered")
        exact = _coupled("titan", "exact")
        assert declined.end_to_end == exact.end_to_end
        assert declined.put_time == exact.put_time
        assert declined.get_time == exact.get_time

    def test_discard_declines_steady_with_a_recorded_reason(self):
        """Which steps get dropped depends on the absolute writer/reader
        phase: hidden aperiodic state no fingerprint can vouch for."""
        result = _coupled(
            "cori", "steady+clustered", config_knobs=dict(sst_discard=True)
        )
        assert result.ok
        assert result.fidelity == "exact"  # clustering declines too
        assert "aperiodic hidden state" in result.fidelity_fallback

    def test_discard_decline_falls_back_bit_identically(self):
        declined = _coupled(
            "cori", "steady+clustered", config_knobs=dict(sst_discard=True)
        )
        exact = _coupled(
            "cori", "exact", config_knobs=dict(sst_discard=True)
        )
        assert declined.end_to_end == exact.end_to_end
        assert declined.put_time == exact.put_time

    def test_pmem_mirroring_declines_clustering(self):
        """Every group would write through the one shared tier device."""
        result = _coupled(
            "cori", "clustered", config_knobs=dict(pmem_checkpoint=True)
        )
        assert result.ok
        assert result.fidelity == "exact"
        plain = _coupled("cori", "clustered")
        assert plain.fidelity == "clustered"

    def test_batch_always_declines_with_a_recorded_reason(self):
        result = _coupled("cori", "clustered", batch_actors=True)
        assert result.ok
        assert result.fidelity == "clustered"  # engaged, but not batch
        assert "bounded step queue" in result.batch_fallback

    def test_short_runs_record_the_warmup_decline(self):
        """steps=5 under queue_size=4 leaves no room past the warm-up."""
        result = _coupled(
            "cori", "steady+clustered", config_knobs=dict(queue_size=4)
        )
        assert result.ok
        assert result.fidelity == "clustered"
        assert "warm-up" in result.fidelity_fallback
