"""Unit and property tests for regions and variables."""

import pytest
from hypothesis import given, strategies as st

from repro.hpc import DimensionOverflow
from repro.staging.ndarray import Region, Variable, longest_dimension


class TestRegion:
    def test_shape_and_elements(self):
        r = Region((0, 2), (5, 10))
        assert r.ndim == 2
        assert r.shape == (5, 8)
        assert r.num_elements == 40

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Region((0,), (0, 1))
        with pytest.raises(ValueError):
            Region((5,), (3,))
        with pytest.raises(ValueError):
            Region((-1,), (3,))
        with pytest.raises(ValueError):
            Region((), ())

    def test_intersect_overlapping(self):
        a = Region((0, 0), (10, 10))
        b = Region((5, 5), (15, 15))
        assert a.intersect(b) == Region((5, 5), (10, 10))

    def test_intersect_disjoint_is_none(self):
        a = Region((0,), (5,))
        b = Region((5,), (10,))
        assert a.intersect(b) is None

    def test_intersect_rank_mismatch(self):
        with pytest.raises(ValueError):
            Region((0,), (5,)).intersect(Region((0, 0), (5, 5)))

    def test_contains(self):
        outer = Region((0, 0), (10, 10))
        assert outer.contains(Region((2, 3), (4, 5)))
        assert outer.contains(outer)
        assert not outer.contains(Region((2, 3), (4, 11)))

    def test_translate(self):
        r = Region((1, 1), (3, 3)).translate((10, 20))
        assert r == Region((11, 21), (13, 23))

    def test_local_slices(self):
        within = Region((10, 0), (20, 8))
        inner = Region((12, 2), (15, 6))
        assert inner.local_slices(within) == (slice(2, 5), slice(2, 6))

    def test_local_slices_requires_containment(self):
        with pytest.raises(ValueError):
            Region((0,), (5,)).local_slices(Region((1,), (4,)))

    def test_whole(self):
        assert Region.whole((3, 4)) == Region((0, 0), (3, 4))

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 20)),
            min_size=1,
            max_size=4,
        )
    )
    def test_intersect_commutative(self, spans):
        lb = tuple(s[0] for s in spans)
        ub = tuple(s[0] + s[1] for s in spans)
        a = Region(lb, ub)
        b = Region(tuple(x + 3 for x in lb), tuple(x + 3 for x in ub))
        assert a.intersect(b) == b.intersect(a)

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 30))
    def test_intersection_never_larger(self, ext_a, ext_b, offset):
        a = Region((0,), (ext_a,))
        b = Region((offset,), (offset + ext_b,))
        overlap = a.intersect(b)
        if overlap is not None:
            assert overlap.num_elements <= min(a.num_elements, b.num_elements)
            assert a.contains(overlap)
            assert b.contains(overlap)


class TestVariable:
    def test_nbytes_matches_table2_lammps(self):
        # LAMMPS output: 5 x nprocs x 512000 doubles.
        var = Variable("atoms", (5, 32, 512000))
        assert var.nbytes == 5 * 32 * 512000 * 8

    def test_region_bytes(self):
        var = Variable("field", (10, 10), elem_size=4)
        assert var.region_bytes(Region((0, 0), (2, 5))) == 40

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Variable("x", ())
        with pytest.raises(ValueError):
            Variable("x", (0, 5))
        with pytest.raises(ValueError):
            Variable("x", (5,), elem_size=0)

    def test_dim_overflow_32bit(self):
        var = Variable("big", (2**33, 4))
        with pytest.raises(DimensionOverflow):
            var.check_dims(dim_bits=32)

    def test_dim_ok_64bit(self):
        var = Variable("big", (2**33, 4))
        var.check_dims(dim_bits=64)  # no raise

    def test_dim_bits_validated(self):
        var = Variable("x", (4,))
        with pytest.raises(ValueError):
            var.check_dims(dim_bits=16)

    def test_bounds(self):
        var = Variable("x", (3, 4))
        assert var.bounds == Region((0, 0), (3, 4))


def test_longest_dimension():
    assert longest_dimension((5, 32, 512000)) == 2
    assert longest_dimension((7, 7)) == 0
    assert longest_dimension((1,)) == 0
