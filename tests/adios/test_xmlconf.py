"""Unit tests for ADIOS XML configuration parsing."""

import pytest

from repro.adios import AdiosConfigError, parse_config

GOOD_XML = """
<adios-config>
  <adios-group name="atoms">
    <var name="positions" type="double" dimensions="5,nprocs,512000"/>
    <var name="energy" type="double" dimensions="nprocs"/>
    <attribute name="units" value="lj"/>
  </adios-group>
  <method group="atoms" method="DATASPACES">lock_type=2;max_versions=1</method>
  <buffer size-MB="200"/>
</adios-config>
"""


def test_parse_groups_and_vars():
    config = parse_config(GOOD_XML)
    group = config.group("atoms")
    assert group.var("positions").dimensions == ("5", "nprocs", "512000")
    assert group.var("energy").dtype == "double"
    assert group.attributes == {"units": "lj"}


def test_parse_method_and_params():
    config = parse_config(GOOD_XML)
    method = config.method_for("atoms")
    assert method.method == "DATASPACES"
    assert method.staging_method == "dataspaces-adios"
    assert method.parameters == {"lock_type": "2", "max_versions": "1"}


def test_buffer_size():
    assert parse_config(GOOD_XML).buffer_mb == 200


def test_resolve_dims():
    config = parse_config(GOOD_XML)
    decl = config.group("atoms").var("positions")
    assert decl.resolve_dims({"nprocs": 32}) == (5, 32, 512000)


def test_resolve_unknown_token():
    config = parse_config(GOOD_XML)
    decl = config.group("atoms").var("positions")
    with pytest.raises(AdiosConfigError):
        decl.resolve_dims({})


def test_method_aliases():
    for adios_name, repro_name in [
        ("FLEXPATH", "flexpath"),
        ("DIMES", "dimes-adios"),
        ("MPI", "mpiio"),
    ]:
        xml = f"""
        <adios-config>
          <adios-group name="g"><var name="v" dimensions="4"/></adios-group>
          <method group="g" method="{adios_name}"/>
        </adios-config>
        """
        assert parse_config(xml).method_for("g").staging_method == repro_name


def test_unknown_method_rejected():
    xml = """
    <adios-config>
      <adios-group name="g"><var name="v" dimensions="4"/></adios-group>
      <method group="g" method="CARRIER_PIGEON"/>
    </adios-config>
    """
    with pytest.raises(AdiosConfigError):
        parse_config(xml).method_for("g").staging_method


def test_method_for_missing_group():
    xml = """
    <adios-config>
      <adios-group name="g"><var name="v" dimensions="4"/></adios-group>
      <method group="other" method="MPI"/>
    </adios-config>
    """
    with pytest.raises(AdiosConfigError):
        parse_config(xml)


def test_invalid_xml():
    with pytest.raises(AdiosConfigError):
        parse_config("<adios-config><unclosed>")


def test_wrong_root():
    with pytest.raises(AdiosConfigError):
        parse_config("<something/>")


def test_var_without_dimensions():
    xml = """
    <adios-config>
      <adios-group name="g"><var name="v"/></adios-group>
    </adios-config>
    """
    with pytest.raises(AdiosConfigError):
        parse_config(xml)


def test_malformed_method_params():
    xml = """
    <adios-config>
      <adios-group name="g"><var name="v" dimensions="4"/></adios-group>
      <method group="g" method="MPI">not-a-pair</method>
    </adios-config>
    """
    with pytest.raises(AdiosConfigError):
        parse_config(xml)
