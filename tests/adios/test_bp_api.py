"""Unit tests for the BP format and the descriptive ADIOS API."""

import numpy as np
import pytest

from repro.adios import Adios, AdiosError, BpError, BpReader, BpWriter
from repro.hpc import Cluster, TITAN
from repro.sim import Environment
from repro.staging import Region


class TestBpFormat:
    def test_roundtrip_single_var(self):
        writer = BpWriter("atoms", rank=3)
        data = np.arange(24, dtype=np.float64).reshape(4, 6)
        writer.write("positions", data)
        reader = BpReader(writer.pack())
        assert reader.group == "atoms"
        assert reader.rank == 3
        np.testing.assert_array_equal(reader.read("positions"), data)

    def test_roundtrip_multiple_vars_and_dtypes(self):
        writer = BpWriter("g")
        a = np.random.default_rng(0).random((3, 3))
        b = np.arange(5, dtype=np.int64)
        writer.write("a", a)
        writer.write("b", b)
        reader = BpReader(writer.pack())
        assert reader.var_names() == ["a", "b"]
        np.testing.assert_array_equal(reader.read("a"), a)
        np.testing.assert_array_equal(reader.read("b"), b)

    def test_global_dims_and_offsets_preserved(self):
        writer = BpWriter("g")
        writer.write(
            "field",
            np.zeros((4, 8)),
            global_dims=(16, 8),
            offsets=(4, 0),
        )
        record = BpReader(writer.pack()).records[0]
        assert record.global_dims == (16, 8)
        assert record.offsets == (4, 0)
        assert record.local_dims == (4, 8)

    def test_self_describing_no_schema_needed(self):
        buffer = BpWriter("g")
        buffer.write("x", np.float32([1, 2, 3]))
        reader = BpReader(buffer.pack())
        out = reader.read("x")
        assert out.dtype == np.float32

    def test_unknown_var(self):
        writer = BpWriter("g")
        writer.write("x", np.zeros(2))
        with pytest.raises(KeyError):
            BpReader(writer.pack()).read("y")

    def test_bad_magic(self):
        with pytest.raises(BpError):
            BpReader(b"NOPE" + b"\x00" * 32)

    def test_corrupted_footer(self):
        writer = BpWriter("g")
        writer.write("x", np.zeros(2))
        packed = bytearray(writer.pack())
        packed[-8] ^= 0xFF  # flip a bit in the minifooter offset
        with pytest.raises(BpError):
            BpReader(bytes(packed))

    def test_unsupported_dtype(self):
        writer = BpWriter("g")
        with pytest.raises(BpError):
            writer.write("x", np.array(["a", "b"]))


LAMMPS_XML = """
<adios-config>
  <adios-group name="atoms">
    <var name="positions" type="double" dimensions="4,nprocs,100"/>
  </adios-group>
  <method group="atoms" method="FLEXPATH"/>
</adios-config>
"""


class TestAdiosApi:
    def run_coupled_through_adios(self, nsim=4, nana=2, steps=2):
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(LAMMPS_XML, cluster, nsim=nsim, nana=nana, steps=steps)
        var = adios.variable("atoms", "positions")
        rng = np.random.default_rng(1)
        full = rng.random(var.dims)
        results = {}

        from repro.staging import application_decomposition

        lib = adios.library_for("atoms", "positions")
        wr = application_decomposition(var, lib.topology.sim_actors, 1)
        rr = application_decomposition(var, lib.topology.ana_actors, 1)

        def writer(actor):
            fd = adios.open("atoms", "w", actor)
            for v in range(steps):
                payload = full[wr[actor].local_slices(var.bounds)] + v
                yield from fd.write("positions", wr[actor], v, payload)
            yield from fd.close()

        def reader(actor):
            fd = adios.open("atoms", "r", actor)
            for v in range(steps):
                total, data = yield from fd.read("positions", rr[actor], v)
                results[(actor, v)] = data
            yield from fd.close()

        def main(env):
            yield env.process(adios.bootstrap("atoms", "positions"))
            procs = [env.process(writer(i)) for i in range(lib.topology.sim_actors)]
            procs += [env.process(reader(j)) for j in range(lib.topology.ana_actors)]
            yield env.all_of(procs)

        env.process(main(env))
        env.run()
        return adios, var, full, results, rr

    def test_full_roundtrip_through_xml_configured_method(self):
        adios, var, full, results, rr = self.run_coupled_through_adios()
        for (actor, v), data in results.items():
            expected = full[rr[actor].local_slices(var.bounds)] + v
            np.testing.assert_allclose(data, expected)

    def test_method_dispatch_from_xml(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(LAMMPS_XML, cluster, nsim=4, nana=2)
        lib = adios.library_for("atoms", "positions")
        assert lib.name == "flexpath"

    def test_nprocs_param_resolution(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(LAMMPS_XML, cluster, nsim=16, nana=8)
        assert adios.variable("atoms", "positions").dims == (4, 16, 100)

    def test_mode_enforcement(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(LAMMPS_XML, cluster, nsim=4, nana=2)
        fd = adios.open("atoms", "r")
        gen = fd.write("positions", Region((0, 0, 0), (1, 1, 1)), 0)
        with pytest.raises(AdiosError):
            next(gen)

    def test_closed_handle_rejected(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(LAMMPS_XML, cluster, nsim=4, nana=2)
        fd = adios.open("atoms", "w")

        def proc(env):
            yield from fd.close()

        env.process(proc(env))
        env.run()
        with pytest.raises(AdiosError):
            next(fd.write("positions", Region((0, 0, 0), (1, 1, 1)), 0))

    def test_invalid_mode(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(LAMMPS_XML, cluster, nsim=4, nana=2)
        with pytest.raises(AdiosError):
            adios.open("atoms", "rw")

    def test_unknown_group(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(LAMMPS_XML, cluster, nsim=4, nana=2)
        with pytest.raises(KeyError):
            adios.open("nope", "w")


class TestXmlMethodParameters:
    """Table I runtime settings flow from the XML into StagingConfig."""

    def test_queue_size_reaches_flexpath(self):
        xml = """
        <adios-config>
          <adios-group name="g"><var name="v" dimensions="4,nprocs,8"/></adios-group>
          <method group="g" method="FLEXPATH">queue_size=3</method>
        </adios-config>
        """
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(xml, cluster, nsim=4, nana=2)
        lib = adios.library_for("g", "v")
        assert lib.config.queue_size == 3

    def test_lock_and_versions_reach_dataspaces(self):
        xml = """
        <adios-config>
          <adios-group name="g"><var name="v" dimensions="4,nprocs,8"/></adios-group>
          <method group="g" method="DATASPACES">lock_type=2;max_versions=2</method>
        </adios-config>
        """
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(xml, cluster, nsim=4, nana=2)
        lib = adios.library_for("g", "v")
        assert lib.config.lock_type == 2
        assert lib.config.max_versions == 2
        assert lib.config.use_adios  # the framework flag survives

    def test_unknown_parameters_tolerated(self):
        xml = """
        <adios-config>
          <adios-group name="g"><var name="v" dimensions="4,nprocs,8"/></adios-group>
          <method group="g" method="MPI">stats=off;verbose=2</method>
        </adios-config>
        """
        env = Environment()
        cluster = Cluster(env, TITAN)
        adios = Adios(xml, cluster, nsim=4, nana=2)
        lib = adios.library_for("g", "v")  # must not raise
        assert lib.name == "mpiio"
