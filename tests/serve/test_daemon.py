"""The serve daemon end to end: one module-scoped daemon, many clients.

The daemon runs on a background thread inside the test process (its
warm workers are real spawn processes), so the serial golden for fig6
is rendered *first*, against a clean cache, before the daemon exists.
"""

import os
import tempfile
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core import runcache
from repro.core.export import to_csv, to_json
from repro.core.study import Study
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(scope="module")
def golden():
    """Serial fig6 bytes, rendered before the daemon touches the cache."""
    runcache.clear()
    study = Study()
    study.run(only=["fig6"])
    table = study.results["fig6"]
    payload = {"csv": to_csv(table), "json": to_json(table)}
    runcache.clear()
    return payload


@pytest.fixture(scope="module")
def served(golden):
    tmp = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(tmp, "d.sock")
    port = _free_port()
    daemon = ServeDaemon(
        socket_path=sock, host="127.0.0.1", port=port, jobs=2,
        drain_seconds=15.0,
    )
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    assert daemon.ready.wait(60), "daemon never came up"
    yield SimpleNamespace(daemon=daemon, sock=sock, port=port, golden=golden)
    daemon.request_shutdown()
    thread.join(60)
    assert not thread.is_alive(), "daemon did not stop on request_shutdown"
    assert not os.path.exists(sock), "socket not unlinked on shutdown"


def client(served, **kwargs) -> ServeClient:
    kwargs.setdefault("timeout", 120.0)
    return ServeClient(socket_path=served.sock, **kwargs).connect(
        retry_seconds=5
    )


def point_spec(**extra):
    spec = dict(machine="titan", workflow="lammps", method=None,
                nsim=2, nana=1, steps=1)
    spec.update(extra)
    return spec


class TestBasics:
    def test_ping(self, served):
        with client(served) as c:
            reply = c.ping()
        assert reply["pong"] == 1
        assert reply["uptime_seconds"] >= 0

    def test_tcp_listener(self, served):
        with ServeClient(host="127.0.0.1", port=served.port).connect() as c:
            assert c.ping()["pong"] == 1

    def test_socket_is_private(self, served):
        assert oct(os.stat(served.sock).st_mode & 0o777) == "0o600"

    def test_unknown_op_and_unknown_job(self, served):
        with client(served) as c:
            with pytest.raises(ServeError, match="unknown op"):
                c._request({"op": "frobnicate"})
            with pytest.raises(ServeError, match="unknown job"):
                c.status("j999999")

    def test_bad_figure_id_fails_the_job(self, served):
        with client(served) as c:
            reply = c.submit_figure("fig99")
            final = c.wait(reply["job"])
        assert final["state"] == "failed"
        assert "unknown experiment id" in final["error"]


class TestFigureServing:
    def test_concurrent_duplicates_share_one_run_byte_identical(self, served):
        before = served.daemon.jobs_coalesced
        with client(served) as first, client(served) as second:
            submitted = first.submit_figure("6")
            duplicate = second.submit_figure("fig6")  # while in flight
            assert duplicate["job"] == submitted["job"]
            assert duplicate["coalesced"] is True
            assert submitted["coalesced"] is False
            events = []
            final_first = first.stream(submitted["job"], events.append)
            final_second = second.wait(duplicate["job"])
        assert final_first["state"] == "done"
        assert final_second["state"] == "done"
        assert events, "stream delivered no progress events"
        for final in (final_first, final_second):
            tables = final["result"]["tables"]
            assert tables["fig6"]["csv"] == served.golden["csv"]
            assert tables["fig6"]["json"] == served.golden["json"]
        assert served.daemon.jobs_coalesced == before + 1
        with client(served) as c:
            stats = c.stats()
        assert stats["cache"]["job_coalesced"] >= 1
        assert stats["jobs"]["coalesced"] >= 1

    def test_resubmission_is_a_new_job_served_from_cache(self, served):
        with client(served) as c:
            first = c.submit_figure("6")
            final1 = c.wait(first["job"])
            again = c.submit_figure("6")
            assert again["coalesced"] is False
            assert again["job"] != first["job"]
            final2 = c.wait(again["job"])
        assert final2["result"]["tables"] == final1["result"]["tables"]
        # every point of the rerun came from the shared store
        assert final2["result"]["report"]["executed"] == 0

    def test_stream_after_completion_replays_the_backlog(self, served):
        with client(served) as c:
            job = c.submit_figure("6")["job"]
            c.wait(job)
            events = []
            final = c.stream(job, events.append)
        assert final["state"] == "done"
        assert events, "finished job should replay its event backlog"


class TestPointServing:
    def test_point_round_trips_a_result(self, served):
        with client(served) as c:
            reply = c.submit_point(point_spec())
            final = c.wait(reply["job"])
        assert final["state"] == "done"
        result = final["result"]
        assert result["summary"]["ok"] is True
        assert result["summary"]["end_to_end"] > 0

    def test_duplicate_point_hits_the_shared_store(self, served):
        spec = point_spec(nsim=4, nana=2)
        with client(served) as c:
            first = c.wait(c.submit_point(spec)["job"])
            second = c.wait(c.submit_point(spec)["job"])
        assert first["state"] == second["state"] == "done"
        assert second["result"]["cache_hit"] is True
        assert (second["result"]["summary"]["end_to_end"]
                == first["result"]["summary"]["end_to_end"])

    def test_worker_crash_is_retried_transparently(self, served):
        crashed_before = served.daemon.pool.workers_crashed
        with client(served) as c:
            reply = c.submit_point(point_spec(nsim=6, nana=3, __crash__=1))
            final = c.wait(reply["job"])
        assert final["state"] == "done"
        assert final["result"]["attempts"] == 2
        assert served.daemon.pool.workers_crashed == crashed_before + 1

    def test_poison_point_fails_cleanly(self, served):
        with client(served) as c:
            reply = c.submit_point(point_spec(nsim=8, nana=4, __crash__=True))
            final = c.wait(reply["job"])
        assert final["state"] == "failed"
        assert "died" in final["error"]

    def test_cancel_inflight_point(self, served):
        with client(served) as c:
            reply = c.submit_point(point_spec(nsim=10, nana=5, __sleep__=30))
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if c.status(reply["job"])["state"] == "running":
                    break
                time.sleep(0.05)
            c.cancel(reply["job"])
            final = c.wait(reply["job"])
        assert final["state"] == "cancelled"

    def test_malformed_point_is_rejected(self, served):
        with client(served) as c:
            with pytest.raises(ServeError, match="missing keys"):
                c.submit_point({"machine": "titan"})


class TestStudyOverService:
    def test_study_rides_the_daemon_byte_identical(self, served):
        study = Study(service=served.sock)
        study.run(only=["fig6"])
        assert to_csv(study.results["fig6"]) == served.golden["csv"]
        assert to_json(study.results["fig6"]) == served.golden["json"]
        report = study.run_report
        assert report is not None
        assert report.quarantined == []
        assert report.runcache is not None


class TestJobEviction:
    """Finished-job retention: TTL + cap, applied at submission time."""

    def _daemon(self, tmp_path, **kwargs):
        kwargs.setdefault("job_cap", 3)
        kwargs.setdefault("job_ttl_seconds", 60.0)
        return ServeDaemon(
            socket_path=str(tmp_path / "evict.sock"), **kwargs
        )

    def _job(self, loop, ident, state="done", finished_ago=0.0):
        from repro.serve.daemon import Job

        job = Job(ident=ident, kind="figure", key=f"figure:{ident}",
                  params={}, loop=loop, state=state)
        if state in ("done", "failed", "cancelled"):
            job.finished = time.monotonic() - finished_ago
        return job

    @pytest.fixture()
    def loop(self):
        import asyncio

        loop = asyncio.new_event_loop()
        yield loop
        loop.close()

    def test_cap_evicts_oldest_finished_first(self, tmp_path, loop):
        daemon = self._daemon(tmp_path)
        # j0 finished longest ago; cap=3 keeps the 3 newest.
        for i in range(5):
            job = self._job(loop, f"j{i}", finished_ago=50.0 - 10 * i)
            daemon.jobs[job.ident] = job
        daemon._evict_finished()
        assert sorted(daemon.jobs) == ["j2", "j3", "j4"]
        assert daemon.jobs_evicted == 2

    def test_ttl_evicts_even_under_the_cap(self, tmp_path, loop):
        daemon = self._daemon(tmp_path, job_ttl_seconds=30.0)
        daemon.jobs["old"] = self._job(loop, "old", finished_ago=31.0)
        daemon.jobs["new"] = self._job(loop, "new", finished_ago=1.0)
        daemon._evict_finished()
        assert sorted(daemon.jobs) == ["new"]
        assert daemon.jobs_evicted == 1

    def test_live_jobs_are_never_evicted(self, tmp_path, loop):
        daemon = self._daemon(tmp_path, job_cap=1)
        daemon.jobs["run"] = self._job(loop, "run", state="running")
        daemon.jobs["que"] = self._job(loop, "que", state="queued")
        daemon.jobs["fin"] = self._job(loop, "fin", finished_ago=1.0)
        daemon._evict_finished()
        # Over the cap, but only the finished job is eligible.
        assert sorted(daemon.jobs) == ["que", "run"]
        assert daemon.jobs_evicted == 1

    def test_evicted_counter_reaches_the_stats_payload(self, tmp_path, loop):
        daemon = self._daemon(tmp_path, job_ttl_seconds=0.0)
        daemon.jobs["gone"] = self._job(loop, "gone", finished_ago=1.0)
        daemon._evict_finished()
        assert daemon.stats()["jobs"]["evicted"] == 1
