"""Wire format: framing, figure-id spelling, address parsing."""

import pytest

from repro.serve import protocol


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"op": "submit", "kind": "figure", "full": False}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert protocol.decode(line) == message

    def test_encode_is_canonical(self):
        a = protocol.encode({"b": 1, "a": 2})
        b = protocol.encode({"a": 2, "b": 1})
        assert a == b  # sorted keys: one message, one byte sequence

    def test_decode_rejects_junk(self):
        with pytest.raises(ValueError):
            protocol.decode(b"not json\n")
        with pytest.raises(ValueError, match="JSON object"):
            protocol.decode(b"[1, 2]\n")
        with pytest.raises(ValueError, match="exceeds"):
            protocol.decode(b"x" * (protocol.MAX_LINE + 1))

    def test_error_shape(self):
        reply = protocol.error("nope")
        assert reply == {"ok": False, "error": "nope"}

    def test_pickle_side_channel_round_trips(self):
        spec = {"machine": "Cori", "nsim": 64, "nested": {"a": [1, 2]}}
        packed = protocol.pack_pickle(spec)
        assert isinstance(packed, str)
        assert protocol.unpack_pickle(packed) == spec


class TestNormalizeFigure:
    @pytest.mark.parametrize("short,full", [
        ("2a", "fig2a"), ("6", "fig6"), ("13", "fig13"), ("2B", "fig2b"),
    ])
    def test_short_spellings_gain_prefix(self, short, full):
        assert protocol.normalize_figure(short) == full

    @pytest.mark.parametrize("ident", [
        "fig2a", "fig6", "table5", "portability", "conclusions",
    ])
    def test_full_ids_pass_through(self, ident):
        assert protocol.normalize_figure(ident) == ident

    def test_whitespace_and_case(self):
        assert protocol.normalize_figure("  Fig6 ") == "fig6"


class TestParseAddress:
    def test_host_port(self):
        assert protocol.parse_address("127.0.0.1:7777") == {
            "host": "127.0.0.1", "port": 7777,
        }

    def test_plain_path_is_a_socket(self):
        assert protocol.parse_address("repro-serve.sock") == {
            "socket_path": "repro-serve.sock",
        }

    def test_path_with_colon_but_no_numeric_port_is_a_socket(self):
        assert protocol.parse_address("/tmp/a:b.sock") == {
            "socket_path": "/tmp/a:b.sock",
        }
