"""Single-flight coalescing: leaders compute, followers wait."""

import threading

import pytest

from repro.serve.cache import SingleFlight


class TestSingleFlight:
    def test_first_caller_leads(self):
        flight = SingleFlight()
        assert flight.begin("k") is True
        assert flight.inflight_now == 1

    def test_duplicate_becomes_follower_and_gets_the_outcome(self):
        flight = SingleFlight()
        got = []
        assert flight.begin("k") is True
        assert flight.begin("k", follower=got.append) is False
        assert flight.begin("k", follower=got.append) is False
        assert got == []  # followers wait for the leader
        assert flight.settle("k", outcome=42) == 2
        assert got == [42, 42]
        assert flight.inflight_now == 0

    def test_follower_required_for_duplicates(self):
        flight = SingleFlight()
        flight.begin("k")
        with pytest.raises(ValueError, match="in flight"):
            flight.begin("k")

    def test_key_is_free_again_after_settle(self):
        flight = SingleFlight()
        flight.begin("k")
        flight.settle("k", outcome=None)
        assert flight.begin("k") is True  # a new leader, not a follower

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.begin("a") is True
        assert flight.begin("b") is True
        assert flight.inflight_now == 2

    def test_abandon_returns_orphans_without_invoking(self):
        flight = SingleFlight()
        got = []
        flight.begin("k")
        flight.begin("k", follower=got.append)
        orphans = flight.abandon("k")
        assert len(orphans) == 1
        assert got == []  # the caller decides what to feed them
        assert flight.inflight_now == 0

    def test_counters(self):
        flight = SingleFlight()
        flight.begin("k")
        flight.begin("k", follower=lambda _: None)
        flight.settle("k", outcome=1)
        stats = flight.stats()
        assert stats == {"coalesced": 1, "resolved": 1, "inflight_now": 0}

    def test_thread_race_elects_exactly_one_leader(self):
        flight = SingleFlight()
        leaders = []
        outcomes = []
        barrier = threading.Barrier(8)

        def contender():
            barrier.wait()
            if flight.begin("k", follower=outcomes.append):
                leaders.append(True)

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(leaders) == 1
        flight.settle("k", outcome="done")
        assert outcomes == ["done"] * 7
