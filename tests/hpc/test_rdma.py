"""Unit tests for the uGNI-style RDMA pool (paper Figure 4 behaviour)."""

import pytest

from repro.hpc import KB, MB, OutOfRdmaHandlers, OutOfRdmaMemory, RdmaPool, TITAN
from repro.sim import Environment


def make_titan_pool(env):
    node = TITAN.node
    return RdmaPool(env, node.rdma_capacity, node.rdma_max_handlers)


def test_register_deregister_roundtrip():
    env = Environment()
    pool = make_titan_pool(env)
    h = pool.register(100 * MB)
    assert pool.registered == 100 * MB
    assert pool.num_handlers == 1
    pool.deregister(h)
    assert pool.registered == 0
    assert pool.num_handlers == 0


def test_deregister_idempotent():
    env = Environment()
    pool = make_titan_pool(env)
    h = pool.register(1 * MB)
    pool.deregister(h)
    pool.deregister(h)
    assert pool.registered == 0


def test_capacity_exceeded_fails_hard():
    env = Environment()
    pool = make_titan_pool(env)
    pool.register(1800 * MB)
    with pytest.raises(OutOfRdmaMemory):
        pool.register(100 * MB)
    assert pool.failed_registrations == 1


def test_handler_limit_enforced():
    env = Environment()
    pool = RdmaPool(env, capacity=10 * MB, max_handlers=3)
    for _ in range(3):
        pool.register(1)
    with pytest.raises(OutOfRdmaHandlers):
        pool.register(1)


def test_fig4_small_requests_bound_by_handlers():
    """Requests <= 512 KB: at most 3,675 concurrent registrations."""
    env = Environment()
    pool = make_titan_pool(env)
    assert pool.max_concurrent_registrations(512 * KB) == 3675
    assert pool.max_concurrent_registrations(4 * KB) == 3675


def test_fig4_large_requests_bound_by_capacity():
    """Requests > 512 KB: bound by the 1,843 MB capacity."""
    env = Environment()
    pool = make_titan_pool(env)
    assert pool.max_concurrent_registrations(1 * MB) == 1843
    assert pool.max_concurrent_registrations(128 * MB) == 14
    assert pool.max_concurrent_registrations(2048 * MB) == 0


def test_register_with_retry_waits_for_release():
    env = Environment()
    pool = RdmaPool(env, capacity=10 * MB, max_handlers=10)
    events = []

    def holder(env):
        h = pool.register(8 * MB)
        yield env.timeout(5)
        pool.deregister(h)

    def retrier(env):
        handle = yield env.process(
            pool.register_with_retry(8 * MB, retry_interval=1)
        )
        events.append((env.now, handle.nbytes))

    env.process(holder(env))
    env.process(retrier(env))
    env.run()
    assert len(events) == 1
    assert events[0][0] == pytest.approx(5, abs=1.01)


def test_register_with_retry_gives_up():
    env = Environment()
    pool = RdmaPool(env, capacity=10 * MB, max_handlers=10)
    pool.register(8 * MB)  # never released

    def retrier(env):
        yield env.process(
            pool.register_with_retry(8 * MB, retry_interval=0.1, max_retries=3)
        )

    env.process(retrier(env))
    with pytest.raises(OutOfRdmaMemory):
        env.run()


def test_unlimited_pool():
    env = Environment()
    pool = RdmaPool(env, capacity=None, max_handlers=None)
    for _ in range(5000):
        pool.register(10 * MB)
    assert pool.num_handlers == 5000
