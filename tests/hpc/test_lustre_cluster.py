"""Unit tests for the Lustre model, machine catalog and placement."""

import pytest

from repro.hpc import (
    CORI,
    Cluster,
    GB,
    LustreFilesystem,
    LustreSpec,
    MB,
    Placement,
    SchedulerPolicyViolation,
    TITAN,
    get_machine,
)
from repro.sim import Environment


class TestMachineCatalog:
    def test_lookup_case_insensitive(self):
        assert get_machine("Titan") is TITAN
        assert get_machine("CORI") is CORI

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            get_machine("summit")

    def test_paper_specs_titan(self):
        assert TITAN.num_nodes == 18688
        assert TITAN.node.cores == 16
        assert TITAN.node.injection_bw == 5.5 * GB
        assert TITAN.node.rdma_capacity == 1843 * MB
        assert TITAN.node.rdma_max_handlers == 3675
        assert TITAN.lustre.num_mds == 4
        assert not TITAN.allows_node_sharing
        assert not TITAN.interconnect.requires_drc

    def test_paper_specs_cori(self):
        assert CORI.node.cores == 68
        assert CORI.node.injection_bw == 15.6 * GB
        assert CORI.lustre.num_osts == 248
        assert CORI.lustre.num_mds == 1
        assert CORI.allows_node_sharing
        assert not CORI.supports_heterogeneous_launch
        assert CORI.interconnect.requires_drc

    def test_cori_relative_speed(self):
        # "the CPU frequency of Cori is only 63.6% of Titan"
        assert CORI.relative_core_speed == pytest.approx(0.636, abs=0.001)
        assert CORI.compute_time(10.0) == pytest.approx(15.71, abs=0.01)


class TestLustre:
    def make_fs(self, env, num_osts=4, bw=400.0, num_mds=1):
        spec = LustreSpec(
            num_osts=num_osts,
            peak_bandwidth=bw,
            capacity_bytes=10**12,
            num_mds=num_mds,
            mds_op_time=0.5,
        )
        return LustreFilesystem(env, spec)

    def test_open_costs_one_mds_op(self):
        env = Environment()
        fs = self.make_fs(env)

        def proc(env):
            yield env.process(fs.open("/f1"))

        env.process(proc(env))
        env.run()
        assert env.now == pytest.approx(0.5)
        assert fs.files_created == 1

    def test_mds_serializes_opens(self):
        env = Environment()
        fs = self.make_fs(env, num_mds=1)

        def proc(env, path):
            yield env.process(fs.open(path))

        for i in range(4):
            env.process(proc(env, f"/f{i}"))
        env.run()
        assert env.now == pytest.approx(2.0)  # 4 opens x 0.5 s through 1 MDS

    def test_more_mds_parallelizes_opens(self):
        env = Environment()
        fs = self.make_fs(env, num_mds=4)

        def proc(env, path):
            yield env.process(fs.open(path))

        for i in range(4):
            env.process(proc(env, f"/f{i}"))
        env.run()
        assert env.now == pytest.approx(0.5)

    def test_striped_write_uses_parallel_osts(self):
        env = Environment()
        fs = self.make_fs(env, num_osts=4, bw=400.0)  # 100 B/s per OST
        done = []

        def proc(env):
            handle = yield env.process(fs.open("/f", stripe_count=-1, stripe_size=100))
            yield env.process(fs.write(handle, 0, 400))
            done.append(env.now)

        env.process(proc(env))
        env.run()
        # open 0.5 s + 400 B over 4 OSTs in parallel (100 B each at 100 B/s)
        assert done == [pytest.approx(1.5)]
        assert fs.bytes_written == 400

    def test_single_stripe_serializes_on_one_ost(self):
        env = Environment()
        fs = self.make_fs(env, num_osts=4, bw=400.0)
        done = []

        def proc(env):
            handle = yield env.process(fs.open("/f", stripe_count=1, stripe_size=100))
            yield env.process(fs.write(handle, 0, 400))
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [pytest.approx(4.5)]

    def test_read_accounting(self):
        env = Environment()
        fs = self.make_fs(env)

        def proc(env):
            handle = yield env.process(fs.open("/f"))
            yield env.process(fs.read(handle, 0, 123))

        env.process(proc(env))
        env.run()
        assert fs.bytes_read == 123

    def test_invalid_stripe_count(self):
        env = Environment()
        fs = self.make_fs(env)

        def proc(env):
            yield env.process(fs.open("/f", stripe_count=0))

        env.process(proc(env))
        with pytest.raises(ValueError):
            env.run()


class TestClusterPlacement:
    def test_node_creation_lazy_and_cached(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        n5 = cluster.node(5)
        assert cluster.node(5) is n5
        assert len(cluster.booted_nodes) == 1

    def test_node_id_range_checked(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        with pytest.raises(ValueError):
            cluster.node(TITAN.num_nodes)

    def test_drc_only_on_cori(self):
        env = Environment()
        assert Cluster(env, TITAN).drc is None
        assert Cluster(env, CORI).drc is not None

    def test_dedicated_placement_no_overlap(self):
        env = Environment()
        cluster = Cluster(env, TITAN)  # 16 cores/node
        placement = Placement(cluster)
        sim = placement.place("simulation", 32)
        ana = placement.place("analytics", 16)
        sim_nodes = {loc.node_id for loc in sim}
        ana_nodes = {loc.node_id for loc in ana}
        assert sim_nodes == {0, 1}
        assert ana_nodes == {2}

    def test_shared_placement_overlaps(self):
        env = Environment()
        cluster = Cluster(env, CORI)
        placement = Placement(cluster, shared_nodes=True)
        sim = placement.place("simulation", 68)
        ana = placement.place("analytics", 68)
        assert {loc.node_id for loc in sim} == {loc.node_id for loc in ana} == {0}

    def test_titan_refuses_shared_mode(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        with pytest.raises(SchedulerPolicyViolation):
            Placement(cluster, shared_nodes=True)

    def test_duplicate_component_rejected(self):
        env = Environment()
        placement = Placement(Cluster(env, TITAN))
        placement.place("simulation", 8)
        with pytest.raises(ValueError):
            placement.place("simulation", 8)

    def test_node_of_resolves(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        placement = Placement(cluster)
        placement.place("servers", 4, ranks_per_node=2)
        assert placement.node_of("servers", 0).node_id == 0
        assert placement.node_of("servers", 3).node_id == 1

    def test_unplaced_component_raises(self):
        env = Environment()
        placement = Placement(Cluster(env, TITAN))
        with pytest.raises(KeyError):
            placement.locations("ghost")
