"""Unit tests for the GPU staging-gap extension."""

import pytest

from repro.hpc import Cluster, GB, MB, OutOfMemory, TITAN
from repro.hpc.gpu import GpuDevice, stage_from_gpu, stage_from_gpu_direct
from repro.sim import Environment
from repro.staging import Variable, application_decomposition, make_library


def setup_gpu():
    env = Environment()
    cluster = Cluster(env, TITAN)
    gpu = GpuDevice(env, cluster.node(0))
    return env, cluster, gpu


class TestGpuDevice:
    def test_device_memory_limit_6gb(self):
        env, cluster, gpu = setup_gpu()
        gpu.allocate(5 * GB)
        with pytest.raises(OutOfMemory):
            gpu.allocate(2 * GB)

    def test_d2h_pays_pcie_time(self):
        env, cluster, gpu = setup_gpu()

        def proc(env):
            yield from gpu.copy_to_host(600 * MB)

        env.process(proc(env))
        env.run()
        assert env.now == pytest.approx(600 * MB / (6 * GB), rel=0.01)
        assert gpu.d2h_bytes == 600 * MB

    def test_h2d_accounting(self):
        env, cluster, gpu = setup_gpu()

        def proc(env):
            yield from gpu.copy_to_device(10 * MB)

        env.process(proc(env))
        env.run()
        assert gpu.h2d_bytes == 10 * MB


class TestGpuStaging:
    def make_library(self, cluster):
        var = Variable("field", (8, 8, 1000))
        lib = make_library(
            "flexpath", cluster, nsim=8, nana=4, variable=var, steps=1,
            topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
        )
        return var, lib

    def run_staged(self, stage_fn):
        env = Environment()
        cluster = Cluster(env, TITAN)
        var, lib = self.make_library(cluster)
        regions = application_decomposition(var, lib.topology.sim_actors, 1)
        gpus = [
            GpuDevice(env, lib.placement.node_of("simulation", i))
            for i in range(lib.topology.sim_actors)
        ]
        done = {}

        def writer(i):
            yield from stage_fn(gpus[i], lib, i, regions[i], 0)
            done[i] = env.now

        def reader(j):
            read = application_decomposition(var, lib.topology.ana_actors, 1)
            yield env.process(lib.get(j, read[j], 0))

        def main(env):
            yield env.process(lib.bootstrap())
            procs = [env.process(writer(i)) for i in range(lib.topology.sim_actors)]
            procs += [env.process(reader(j)) for j in range(lib.topology.ana_actors)]
            yield env.all_of(procs)

        env.process(main(env))
        env.run()
        return max(done.values()), gpus

    def test_bounce_through_host_is_slower_than_direct(self):
        """The portability gap: D2H copies cost real time; NVLink-style
        direct staging (the paper's future-work path) avoids them."""
        bounce_time, bounce_gpus = self.run_staged(stage_from_gpu)
        direct_time, direct_gpus = self.run_staged(stage_from_gpu_direct)
        assert bounce_time > direct_time
        assert sum(g.d2h_bytes for g in bounce_gpus) > 0
        assert sum(g.d2h_bytes for g in direct_gpus) == 0

    def test_bounce_buffer_released(self):
        _, gpus = self.run_staged(stage_from_gpu)
        for gpu in gpus:
            assert gpu.node.memory.category_total("gpu-staging-bounce") == 0
