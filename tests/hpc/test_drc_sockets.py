"""Unit tests for the DRC service and socket descriptor tables."""

import pytest

from repro.hpc import (
    DrcOverload,
    DrcPolicyViolation,
    DrcService,
    OutOfSockets,
    SocketTable,
)
from repro.sim import Environment


class TestDrc:
    def test_acquire_grants_credential(self):
        env = Environment()
        drc = DrcService(env)
        got = []

        def proc(env):
            cred = yield env.process(drc.acquire("job1", node_id=0))
            got.append(cred)

        env.process(proc(env))
        env.run()
        assert got[0].job_id == "job1"
        assert drc.requests_served == 1

    def test_single_server_serializes_requests(self):
        env = Environment()
        drc = DrcService(env, service_time=1.0)
        done = []

        def proc(env, node):
            yield env.process(drc.acquire("job1", node_id=node))
            done.append(env.now)

        for i in range(3):
            env.process(proc(env, i))
        env.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_overload_raises(self):
        env = Environment()
        drc = DrcService(env, max_pending=2, service_time=1.0)
        failures = []

        def proc(env, i):
            try:
                yield env.process(drc.acquire("job1", node_id=i))
            except DrcOverload:
                failures.append(i)

        for i in range(4):
            env.process(proc(env, i))
        env.run()
        assert len(failures) == 2  # two beyond the backlog limit

    def test_node_sharing_policy(self):
        env = Environment()
        drc = DrcService(env)

        def job1(env):
            yield env.process(drc.acquire("job1", node_id=5))

        def job2(env):
            yield env.timeout(1)
            yield env.process(drc.acquire("job2", node_id=5))

        env.process(job1(env))
        env.process(job2(env))
        with pytest.raises(DrcPolicyViolation):
            env.run()

    def test_node_insecure_allows_sharing(self):
        env = Environment()
        drc = DrcService(env, node_insecure=True)
        creds = []

        def proc(env, job):
            cred = yield env.process(drc.acquire(job, node_id=5))
            creds.append(cred)

        env.process(proc(env, "job1"))
        env.process(proc(env, "job2"))
        env.run()
        assert len(creds) == 2

    def test_same_job_reacquire_on_node_ok(self):
        env = Environment()
        drc = DrcService(env)
        count = []

        def proc(env):
            yield env.process(drc.acquire("job1", node_id=3))
            yield env.process(drc.acquire("job1", node_id=3))
            count.append(1)

        env.process(proc(env))
        env.run()
        assert count == [1]

    def test_release_frees_node_for_other_job(self):
        env = Environment()
        drc = DrcService(env)
        creds = []

        def proc(env):
            cred = yield env.process(drc.acquire("job1", node_id=7))
            drc.release(cred, node_id=7)
            cred2 = yield env.process(drc.acquire("job2", node_id=7))
            creds.append(cred2)

        env.process(proc(env))
        env.run()
        assert creds[0].job_id == "job2"


class TestSockets:
    def test_connect_consumes_both_ends(self):
        a = SocketTable("a", max_descriptors=10)
        b = SocketTable("b", max_descriptors=10)
        conn = a.connect(b)
        assert a.in_use == 1
        assert b.in_use == 1
        conn.close()
        assert a.in_use == 0
        assert b.in_use == 0

    def test_close_idempotent(self):
        a = SocketTable("a")
        b = SocketTable("b")
        conn = a.connect(b)
        conn.close()
        conn.close()
        assert a.in_use == 0

    def test_exhaustion_raises(self):
        server = SocketTable("server", max_descriptors=2)
        clients = [SocketTable(f"c{i}") for i in range(3)]
        clients[0].connect(server)
        clients[1].connect(server)
        with pytest.raises(OutOfSockets):
            clients[2].connect(server)
        assert clients[2].failed_connects == 1

    def test_peak_tracking(self):
        a = SocketTable("a")
        b = SocketTable("b")
        conns = [a.connect(b) for _ in range(5)]
        for conn in conns:
            conn.close()
        assert a.peak == 5
        assert a.in_use == 0

    def test_close_all(self):
        a = SocketTable("a")
        peers = [SocketTable(f"p{i}") for i in range(4)]
        for p in peers:
            a.connect(p)
        a.close_all()
        assert a.in_use == 0
        assert all(p.in_use == 0 for p in peers)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            SocketTable("x", max_descriptors=0)
