"""Unit and property tests for the interconnect topology models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hpc import Cluster, CORI, TITAN
from repro.hpc.topology import (
    Topology3dTorus,
    TopologyDragonfly,
    make_topology,
)
from repro.sim import Environment


class TestTorus:
    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Topology3dTorus((0, 2, 2))
        with pytest.raises(ValueError):
            Topology3dTorus((2, 2))

    def test_coordinates_roundtrip(self):
        torus = Topology3dTorus((4, 3, 2))
        seen = set()
        for node in range(torus.num_nodes):
            seen.add(torus.coordinates(node))
        assert len(seen) == 24

    def test_self_distance_zero(self):
        torus = Topology3dTorus((4, 4, 4))
        assert torus.hops(5, 5) == 0

    def test_neighbors_one_hop(self):
        torus = Topology3dTorus((4, 4, 4))
        assert torus.hops(0, 1) == 1
        assert torus.hops(0, 4) == 1    # +1 in y
        assert torus.hops(0, 16) == 1   # +1 in z

    def test_wraparound(self):
        torus = Topology3dTorus((4, 4, 4))
        assert torus.hops(0, 3) == 1  # 0 -> 3 wraps in x

    def test_diameter_bound(self):
        torus = Topology3dTorus((4, 4, 4))
        for a in range(0, 64, 7):
            for b in range(0, 64, 5):
                assert torus.hops(a, b) <= torus.diameter() == 6

    def test_sized_for_titan(self):
        torus = Topology3dTorus.for_node_count(TITAN.num_nodes)
        assert torus.num_nodes >= TITAN.num_nodes

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=80)
    def test_property_metric(self, a, b, c):
        torus = Topology3dTorus((4, 4, 4))
        # Symmetry and triangle inequality.
        assert torus.hops(a, b) == torus.hops(b, a)
        assert torus.hops(a, c) <= torus.hops(a, b) + torus.hops(b, c)


class TestDragonfly:
    def test_intra_group_one_hop(self):
        df = TopologyDragonfly(group_size=96)
        assert df.hops(0, 95) == 1
        assert df.hops(3, 3) == 0

    def test_inter_group_three_hops(self):
        df = TopologyDragonfly(group_size=96)
        assert df.hops(0, 96) == 3
        assert df.hops(10, 5000) == 3

    def test_flat_diameter(self):
        assert TopologyDragonfly().diameter() == 3

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            TopologyDragonfly(group_size=0)


class TestClusterIntegration:
    def test_factory(self):
        assert make_topology("3d-torus", 64).name == "3d-torus"
        assert make_topology("dragonfly", 64).name == "dragonfly"
        with pytest.raises(ValueError):
            make_topology("hypercube", 64)

    def test_titan_uses_torus_cori_dragonfly(self):
        env = Environment()
        assert Cluster(env, TITAN).topology.name == "3d-torus"
        assert Cluster(Environment(), CORI).topology.name == "dragonfly"

    def test_distant_nodes_pay_more_latency_on_torus(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        near = cluster.link(cluster.node(0), cluster.node(1))
        far = cluster.link(cluster.node(0), cluster.node(9000))
        assert far.latency > near.latency

    def test_dragonfly_latency_flat(self):
        env = Environment()
        cluster = Cluster(env, CORI)
        a = cluster.link(cluster.node(0), cluster.node(100))
        b = cluster.link(cluster.node(0), cluster.node(9000))
        assert a.latency == b.latency
