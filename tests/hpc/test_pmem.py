"""Unit tests for the persistent-memory staging tier (repro.hpc.pmem)."""

import dataclasses

import pytest

from repro.hpc import (
    Cluster,
    MACHINES,
    PmemDevice,
    PmemDeviceFailure,
    PmemSpec,
    TITAN,
)
from repro.sim import Environment

GB = 1024 ** 3

SPEC = PmemSpec(
    capacity_bytes=10 * GB,
    read_bandwidth=3 * GB,
    write_bandwidth=1 * GB,
    op_time=2.0e-5,
)


def timed(dev, gen):
    """Drive one device generator to completion; (elapsed, return)."""
    env = dev.env
    out = {}

    def proc():
        t0 = env.now
        out["value"] = yield from gen
        out["elapsed"] = env.now - t0

    env.process(proc())
    env.run()
    return out["elapsed"], out.get("value")


def device(spec=SPEC):
    return PmemDevice(Environment(), spec)


class TestDataPath:
    def test_asymmetric_read_write_bandwidth(self):
        """The Optane property: reads run 3x faster than writes."""
        dev = device()
        wrote, _ = timed(dev, dev.write(("sim", 0), 0, 3 * GB))
        assert wrote == pytest.approx(SPEC.op_time + 3.0)
        read, (version, nbytes) = timed(dev, dev.read(("sim", 0)))
        assert (version, nbytes) == (0, 3 * GB)
        assert read == pytest.approx(SPEC.op_time + 1.0)
        assert dev.bytes_written == dev.bytes_read == 3 * GB

    def test_read_of_absent_owner_is_free(self):
        dev = device()
        elapsed, slab = timed(dev, dev.read(("sim", 99)))
        assert slab == (None, 0)
        assert elapsed == 0.0
        assert dev.bytes_read == 0

    def test_checkpoint_rotation_keeps_one_slab_per_owner(self):
        """A new slab releases the owner's previous one on landing."""
        dev = device()
        timed(dev, dev.write(("sim", 0), 0, 2 * GB))
        timed(dev, dev.write(("sim", 0), 1, 3 * GB))
        timed(dev, dev.write(("ana", 1), 0, 1 * GB))
        assert dev.used_bytes == 4 * GB  # not 6: version 0 was released
        assert dev.slab_version(("sim", 0)) == 1
        assert dev.slab_version(("ana", 1)) == 0
        assert dev.slabs_stored == 3
        _, slab = timed(dev, dev.read(("sim", 0)))
        assert slab == (1, 3 * GB)

    def test_capacity_overflow_raises(self):
        dev = device()
        timed(dev, dev.write(("sim", 0), 0, 8 * GB))
        with pytest.raises(PmemDeviceFailure, match="pmem tier full"):
            # Even net of the rotated slab this exceeds 10 GB.
            timed(dev, dev.write(("sim", 0), 1, 11 * GB))
        # Rotation accounting: replacing the 8 GB slab with 9 GB fits.
        timed(dev, dev.write(("sim", 0), 1, 9 * GB))
        assert dev.used_bytes == 9 * GB

    def test_negative_write_rejected(self):
        dev = device()
        with pytest.raises(ValueError):
            timed(dev, dev.write(("sim", 0), 0, -1))


class TestChaosHooks:
    def test_degrade_slows_and_restore_recovers(self):
        dev = device()
        nominal, _ = timed(dev, dev.write(("sim", 0), 0, 1 * GB))
        dev.degrade(4.0)
        slowed, _ = timed(dev, dev.write(("sim", 0), 1, 1 * GB))
        assert slowed == pytest.approx(SPEC.op_time + 4.0)
        dev.restore()
        again, _ = timed(dev, dev.write(("sim", 0), 2, 1 * GB))
        assert again == pytest.approx(nominal)

    def test_slabs_survive_without_any_clearing_hook(self):
        """Persistence: no failure-model path clears the ledger, so a
        restart policy can always find the last slab."""
        dev = device()
        timed(dev, dev.write(("sim", 3), 7, 1 * GB))
        dev.degrade(32.0)
        dev.restore()
        assert dev.slab_version(("sim", 3)) == 7


class TestMachineWiring:
    @pytest.mark.parametrize("name", ["titan", "cori"])
    def test_catalog_machines_carry_a_tier(self, name):
        spec = MACHINES[name].pmem
        assert spec is not None
        # Between DRAM and Lustre, with asymmetric channels.
        assert spec.read_bandwidth > spec.write_bandwidth
        assert spec.capacity_bytes < MACHINES[name].lustre.capacity_bytes

    def test_cluster_builds_the_device_lazily(self):
        env = Environment()
        cluster = Cluster(env, TITAN)
        assert cluster._pmem is None
        dev = cluster.pmem
        assert isinstance(dev, PmemDevice)
        assert cluster.pmem is dev  # memoized

    def test_machine_without_a_spec_has_no_tier(self):
        env = Environment()
        bare = dataclasses.replace(TITAN, pmem=None)
        cluster = Cluster(env, bare)
        assert cluster.pmem is None
