"""Unit tests for hierarchical memory tracking."""

import pytest

from repro.hpc import MB, MemoryTracker, OutOfMemory
from repro.sim import Environment


def test_allocate_and_free_roundtrip():
    env = Environment()
    mt = MemoryTracker(env, "p0")
    a = mt.allocate(100 * MB, "calculation")
    assert mt.total == 100 * MB
    assert mt.category_total("calculation") == 100 * MB
    mt.free(a)
    assert mt.total == 0
    assert mt.peak == 100 * MB


def test_free_is_idempotent():
    env = Environment()
    mt = MemoryTracker(env, "p0")
    a = mt.allocate(10)
    mt.free(a)
    mt.free(a)
    assert mt.total == 0


def test_limit_enforced():
    env = Environment()
    mt = MemoryTracker(env, "p0", limit=50 * MB)
    mt.allocate(40 * MB)
    with pytest.raises(OutOfMemory):
        mt.allocate(20 * MB)
    assert mt.total == 40 * MB  # failed alloc leaves no residue


def test_parent_limit_enforced_across_children():
    env = Environment()
    node = MemoryTracker(env, "node", limit=100 * MB)
    p0 = MemoryTracker(env, "p0", parent=node)
    p1 = MemoryTracker(env, "p1", parent=node)
    p0.allocate(60 * MB)
    with pytest.raises(OutOfMemory):
        p1.allocate(60 * MB)
    p1.allocate(40 * MB)
    assert node.total == 100 * MB


def test_parent_sees_child_categories():
    env = Environment()
    node = MemoryTracker(env, "node")
    p0 = MemoryTracker(env, "p0", parent=node)
    p0.allocate(5 * MB, "staging")
    assert node.category_total("staging") == 5 * MB


def test_breakdown_drops_empty_categories():
    env = Environment()
    mt = MemoryTracker(env, "p0")
    a = mt.allocate(1 * MB, "index")
    mt.allocate(2 * MB, "buffering")
    mt.free(a)
    assert mt.breakdown() == {"buffering": 2 * MB}


def test_timeline_records_every_change():
    env = Environment()
    mt = MemoryTracker(env, "p0")

    def proc(env):
        a = mt.allocate(10 * MB)
        yield env.timeout(5)
        mt.allocate(10 * MB)
        yield env.timeout(5)
        mt.free(a)

    env.process(proc(env))
    env.run()
    assert mt.series.value_at(0) == 10 * MB
    assert mt.series.value_at(5) == 20 * MB
    assert mt.series.value_at(10) == 10 * MB
    assert mt.series.peak() == 20 * MB


def test_negative_allocation_rejected():
    env = Environment()
    mt = MemoryTracker(env, "p0")
    with pytest.raises(ValueError):
        mt.allocate(-1)


def test_free_wrong_tracker_rejected():
    env = Environment()
    a = MemoryTracker(env, "a").allocate(1)
    with pytest.raises(ValueError):
        MemoryTracker(env, "b").free(a)
