"""Unit tests for bandwidth pipes, links and N-to-1 serialization."""

import pytest

from repro.hpc import BandwidthPipe, Link, MB
from repro.sim import Environment


def test_pipe_rate_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        BandwidthPipe(env, 0)


def test_single_transfer_time():
    env = Environment()
    pipe = BandwidthPipe(env, rate=100.0)

    def proc(env):
        yield env.process(pipe.transmit(50))

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(0.5)
    assert pipe.bytes_moved == 50


def test_concurrent_transfers_serialize():
    """Two messages through one pipe take twice as long as one."""
    env = Environment()
    pipe = BandwidthPipe(env, rate=100.0)
    finish = []

    def proc(env):
        yield env.process(pipe.transmit(100))
        finish.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert finish == [pytest.approx(1.0), pytest.approx(2.0)]


def test_n_to_1_scales_linearly():
    """The Finding-3 mechanism: N senders into one pipe => N x time."""
    def total_time(n):
        env = Environment()
        pipe = BandwidthPipe(env, rate=1000.0)

        def sender(env):
            yield env.process(pipe.transmit(1000))

        for _ in range(n):
            env.process(sender(env))
        env.run()
        return env.now

    assert total_time(4) == pytest.approx(4 * total_time(1))


def test_link_crosses_both_pipes_plus_latency():
    env = Environment()
    src = BandwidthPipe(env, rate=100.0)
    dst = BandwidthPipe(env, rate=50.0)
    link = Link(env, src, dst, latency=0.25)

    def proc(env):
        yield env.process(link.send(100))

    env.process(proc(env))
    env.run()
    # 0.25 latency + 1.0 through src + 2.0 through dst
    assert env.now == pytest.approx(3.25)


def test_intra_node_link_single_crossing():
    env = Environment()
    bus = BandwidthPipe(env, rate=100.0)
    link = Link(env, bus, bus, latency=0.0)

    def proc(env):
        yield env.process(link.send(100))

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(1.0)


def test_overhead_factor_inflates_bytes():
    env = Environment()
    src = BandwidthPipe(env, rate=100.0)
    dst = BandwidthPipe(env, rate=100.0)
    link = Link(env, src, dst, latency=0.0, overhead_factor=2.0)

    def proc(env):
        yield env.process(link.send(100))

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(4.0)


def test_overhead_factor_below_one_rejected():
    env = Environment()
    pipe = BandwidthPipe(env, rate=1.0)
    with pytest.raises(ValueError):
        Link(env, pipe, pipe, latency=0, overhead_factor=0.5)


def test_negative_transfer_rejected():
    env = Environment()
    pipe = BandwidthPipe(env, rate=1.0)

    def proc(env):
        yield env.process(pipe.transmit(-1))

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()
