"""Small-unit coverage: byte formatting, constants, reprs."""

import pytest

from repro.hpc import (
    GB,
    KB,
    MB,
    PB,
    TB,
    UINT32_MAX,
    UINT64_MAX,
    fmt_bytes,
)
from repro.hpc.memtrack import Allocation, MemoryTracker
from repro.sim import Environment


class TestUnits:
    def test_scaling_chain(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB
        assert PB == 1024 * TB

    def test_uint_bounds(self):
        assert UINT32_MAX == 2**32 - 1
        assert UINT64_MAX == 2**64 - 1

    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "0.0 B"),
            (512, "512.0 B"),
            (1024, "1.0 KB"),
            (1536, "1.5 KB"),
            (3 * MB, "3.0 MB"),
            (2 * GB, "2.0 GB"),
            (5 * TB, "5.0 TB"),
            (2 * PB, "2.0 PB"),
            (4096 * PB, "4096.0 PB"),  # saturates at PB
        ],
    )
    def test_fmt_bytes(self, nbytes, expected):
        assert fmt_bytes(nbytes) == expected

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-2048) == "-2.0 KB"


class TestReprs:
    def test_allocation_repr(self):
        env = Environment()
        mt = MemoryTracker(env, "p")
        alloc = mt.allocate(3 * MB, "index")
        assert "3.0 MB" in repr(alloc)
        assert "index" in repr(alloc)
        assert "live" in repr(alloc)
        mt.free(alloc)
        assert "freed" in repr(alloc)

    def test_tracker_repr(self):
        env = Environment()
        mt = MemoryTracker(env, "proc7")
        mt.allocate(1 * MB)
        assert "proc7" in repr(mt)
        assert "peak" in repr(mt)

    def test_node_repr_shows_death(self):
        from repro.hpc import Cluster, TITAN

        env = Environment()
        node = Cluster(env, TITAN).node(3)
        assert repr(node) == "<Node 3>"
        node.fail()
        assert "DEAD" in repr(node)
