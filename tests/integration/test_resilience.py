"""Integration tests for the resilience extension (Section IV-C).

The paper: "Resilience mechanisms for machine failures have not been
constructed in existing in-memory computing libraries."  These tests
demonstrate the consequence (a staging-server crash loses staged data)
and the extension that fixes it (fragment replication).
"""

import numpy as np
import pytest

from repro.hpc import Cluster, DataLoss, TITAN
from repro.sim import Environment
from repro.staging import (
    StagingConfig,
    Variable,
    application_decomposition,
    make_library,
)

NSIM, NANA, NSERVERS = 8, 4, 4


def run_with_failure(replication_factor, kill_server=0):
    """Stage a version, kill one staging server, then read everything."""
    env = Environment()
    cluster = Cluster(env, TITAN)
    var = Variable("field", (4, NSIM, 64))
    config = StagingConfig(
        transport="ugni", replication_factor=replication_factor
    )
    lib = make_library(
        "dataspaces", cluster, nsim=NSIM, nana=NANA, variable=var, steps=1,
        num_servers=NSERVERS, config=config,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )
    writes = application_decomposition(var, lib.topology.sim_actors, 1)
    reads = application_decomposition(var, lib.topology.ana_actors, 1)
    rng = np.random.default_rng(0)
    truth = rng.random(var.dims)
    got = {}

    def writer(i):
        block = truth[writes[i].local_slices(var.bounds)]
        yield env.process(lib.put(i, writes[i], 0, block))

    def reader(j):
        total, data = yield env.process(lib.get(j, reads[j], 0))
        got[j] = data

    def main(env):
        yield env.process(lib.bootstrap())
        yield env.all_of([env.process(writer(i)) for i in range(lib.topology.sim_actors)])
        # The crash: one staging node dies after the data is staged.
        lib.servers[kill_server].node.fail()
        yield env.all_of([env.process(reader(j)) for j in range(lib.topology.ana_actors)])

    env.process(main(env))
    env.run()
    return lib, var, truth, reads, got


def test_no_replication_loses_staged_data():
    """The state of the art: a server crash makes gets fail."""
    env = Environment()
    with pytest.raises(DataLoss):
        run_with_failure(replication_factor=1)


def test_replication_survives_one_failure():
    """The extension: factor-2 replication rides through the crash."""
    lib, var, truth, reads, got = run_with_failure(replication_factor=2)
    for j, data in got.items():
        np.testing.assert_allclose(
            data, truth[reads[j].local_slices(var.bounds)]
        )


def test_replication_doubles_server_memory():
    env = Environment()
    cluster = Cluster(env, TITAN)
    var = Variable("field", (4, NSIM, 64))

    def staged_total(factor):
        config = StagingConfig(transport="ugni", replication_factor=factor)
        lib = make_library(
            "dataspaces", cluster if factor == 1 else Cluster(Environment(), TITAN),
            nsim=NSIM, nana=NANA, variable=var, steps=1,
            num_servers=NSERVERS, config=config,
            topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
        )
        writes = application_decomposition(var, lib.topology.sim_actors, 1)
        e = lib.env

        def main(env):
            yield env.process(lib.bootstrap())
            yield env.all_of([
                env.process(lib.put(i, writes[i], 0))
                for i in range(lib.topology.sim_actors)
            ])

        e.process(main(e))
        e.run()
        return sum(s.memory.category_total("staged") for s in lib.servers)

    assert staged_total(2) == pytest.approx(2 * staged_total(1), rel=0.01)


def test_dead_replica_too_still_loses():
    """Killing both the primary and its replica defeats factor 2."""
    env = Environment()
    cluster = Cluster(env, TITAN)
    var = Variable("field", (4, NSIM, 64))
    config = StagingConfig(transport="ugni", replication_factor=2)
    lib = make_library(
        "dataspaces", cluster, nsim=NSIM, nana=NANA, variable=var, steps=1,
        num_servers=NSERVERS, config=config,
        topology_overrides=dict(sim_ranks_per_node=1, ana_ranks_per_node=1),
    )
    writes = application_decomposition(var, lib.topology.sim_actors, 1)
    reads = application_decomposition(var, lib.topology.ana_actors, 1)

    def main(env):
        yield env.process(lib.bootstrap())
        yield env.all_of([
            env.process(lib.put(i, writes[i], 0))
            for i in range(lib.topology.sim_actors)
        ])
        lib.servers[0].node.fail()
        lib.servers[1].node.fail()
        yield env.all_of([
            env.process(lib.get(j, reads[j], 0))
            for j in range(lib.topology.ana_actors)
        ])

    env.process(main(env))
    with pytest.raises(DataLoss):
        env.run()