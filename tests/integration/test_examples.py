"""Every example script must run clean end to end.

Examples are part of the public surface (deliverable b); these tests
execute each one in a subprocess and check for success and the expected
headline output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

CASES = [
    ("quickstart.py", "quickstart complete"),
    ("lammps_msd_workflow.py", "MSD"),
    ("laplace_mta_workflow.py", "distributed moments == single-pass"),
    ("parallel_laplace_workflow.py", "parallel moments == serial reference"),
    ("adios_xml_workflow.py", "data verified"),
    ("data_layout.py", "N-to-1 herding"),
    ("transport_comparison.py", "OutOfSockets"),
    ("workflow_timeline.py", "legend:"),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout
