"""Behavioural verification of the paper's eight findings.

Each test reruns the supporting experiment through the public API and
asserts the *direction* of the paper's claim — the reproduction's
strongest end-to-end checks.
"""

import pytest

from repro.core.findings import FINDINGS


@pytest.mark.parametrize("finding", FINDINGS, ids=lambda f: f"finding{f.number}")
def test_finding_verifies(finding):
    assert finding.verify is not None
    assert finding.verify(), finding.statement
