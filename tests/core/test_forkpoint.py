"""Checkpoint-fork snapshots (:mod:`repro.core.forkpoint`).

Four properties back the fork machinery:

* **round-trip** — ``snapshot()``/``restore()`` on every staging
  library is lossless: a restored instance re-snapshots to the same
  record;
* **byte-identity** — a prefix-restored steps variant and an
  ``os.fork``-ed fault variant reproduce the cold run's RunResult
  float for float (forking never changes bytes, only wall-clock);
* **honest declines** — whenever the protocol cannot guarantee
  identity it says why, in ``fork_fallback`` or the campaign's
  decline map, and the run falls back cold;
* **prefix addressing** — prefix entries are keyed by the spec minus
  (steps, fault plan, recovery) and never collide with full-run
  entries.
"""

import math

import pytest

from repro.chaos.campaign import CELL, WATCHDOG, _ext_config
from repro.chaos.faults import FaultEvent, FaultPlan
from repro.core import forkpoint, runcache
from repro.core.forkpoint import PREFIX_EXCLUDES
from repro.sim.monitor import TimeSeries
from repro.workflows import driver, run_coupled

MACHINES = ("titan", "cori")

#: the six snapshot-capable staging methods and a config that builds
#: each (SST and pmem-tier MPI-IO only exist behind a StagingConfig)
LIBRARY_CONFIGS = {
    "dataspaces": None,
    "dimes": None,
    "flexpath": None,
    "decaf": None,
    "mpiio": _ext_config("mpiio", True),  # pmem slabs ride the extras
    "sst": _ext_config("sst", False),
}

#: a config whose steady certificate engages (cori certifies every
#: library at this scale), so prefix snapshots actually publish
STEADY = dict(machine="cori", method="dataspaces", nsim=32, nana=16,
              fidelity="steady")


def fresh_run(**kwargs):
    runcache.clear()
    return run_coupled(**kwargs)


def assert_float_identical(a, b):
    """Field-by-field RunResult equality, NaN-aware, fork-metadata blind."""
    import dataclasses

    for f in dataclasses.fields(a):
        if f.name in ("library", "forked", "fork_fallback"):
            continue
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, TimeSeries) or isinstance(y, TimeSeries):
            assert (x is None) == (y is None), f.name
            if x is not None:
                assert list(x.times) == list(y.times), f.name
                assert list(x.values) == list(y.values), f.name
        elif isinstance(x, float) and isinstance(y, float):
            assert x == y or (math.isnan(x) and math.isnan(y)), (
                f.name, x, y)
        else:
            assert x == y, (f.name, x, y)


# ---------------------------------------------------- library round-trips


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize("method", sorted(LIBRARY_CONFIGS))
    def test_snapshot_restore_resnapshot(self, machine, method):
        result = fresh_run(machine=machine, method=method,
                           config=LIBRARY_CONFIGS[method], **CELL)
        library = result.library
        assert library is not None
        first = library.snapshot()
        library.restore(first)
        assert library.snapshot() == first

    def test_snapshot_is_picklable(self):
        import pickle

        result = fresh_run(machine="titan", method="mpiio",
                           config=LIBRARY_CONFIGS["mpiio"], **CELL)
        snap = result.library.snapshot()
        assert snap["extras"]["pmem"] is not None  # the slab census rode
        clone = pickle.loads(pickle.dumps(snap))
        result.library.restore(clone)
        assert result.library.snapshot() == snap

    def test_wrong_library_refuses(self):
        result = fresh_run(machine="titan", method="dataspaces", **CELL)
        other = fresh_run(machine="titan", method="decaf", **CELL)
        with pytest.raises(ValueError, match="cannot restore"):
            other.library.restore(result.library.snapshot())


# ------------------------------------------------ prefix-restored variants


class TestPrefixRestore:
    def test_steps_variant_float_identical_to_cold(self):
        cold = {s: fresh_run(steps=s, **STEADY) for s in (8, 16, 32)}
        runcache.clear()
        first = run_coupled(steps=8, **STEADY)
        assert first.forked is None  # nothing resident yet: simulated
        assert first.fidelity == "steady"
        for steps in (16, 32):
            restored = run_coupled(steps=steps, **STEADY)
            assert (restored.forked or "").startswith("prefix:")
            assert_float_identical(restored, cold[steps])

    def test_restore_counts_in_stats(self):
        runcache.clear()
        before = forkpoint.STATS.forks_served
        run_coupled(steps=8, **STEADY)
        run_coupled(steps=16, **STEADY)
        assert forkpoint.STATS.forks_served == before + 1

    def test_steps_inside_prefix_declines(self):
        runcache.clear()
        run_coupled(steps=8, **STEADY)
        key = forkpoint.prefix_key(_spec(steps=8))
        snap = runcache.CACHE.get_prefix(key)
        assert snap is not None
        reason = snap.decline_reason(snap.cutoff + 1)
        assert reason is not None and reason.startswith("prefix:")
        assert "inside the warm-up prefix" in reason
        # and the driver honors it: the short run simulates cold
        short = run_coupled(steps=snap.cutoff + 1, **STEADY)
        assert short.forked is None

    def test_uncertified_orbit_mirrored_in_fork_fallback(self):
        # titan/dimes never certifies steady at this scale: no snapshot
        # publishes, and the fallback mirrors the library's own decline
        runcache.clear()
        kwargs = dict(machine="titan", method="dimes", nsim=32, nana=16,
                      fidelity="steady")
        run_coupled(steps=8, **kwargs)
        result = run_coupled(steps=16, **kwargs)
        assert result.forked is None
        assert result.fork_fallback == result.fidelity_fallback
        assert result.fork_fallback.startswith("steady:")

    def test_uncertified_boundary_attributed_in_fork_fallback(self):
        # titan/dataspaces attempts certification but no boundary pair
        # matches: the prefix consult must say so, honestly attributed
        runcache.clear()
        kwargs = dict(machine="titan", method="dataspaces", nsim=32,
                      nana=16, fidelity="steady")
        run_coupled(steps=8, **kwargs)
        result = run_coupled(steps=16, **kwargs)
        assert result.forked is None
        assert result.fork_fallback.startswith("prefix:")
        assert "not certified" in result.fork_fallback


def _spec(**overrides):
    """The normalized point dict the driver hands to prefix_key."""
    kw = dict(
        machine="cori", workflow="lammps", method="dataspaces", nsim=32,
        nana=16, steps=8, transport=None, num_servers=None,
        shared_nodes=False, variable=None, sim_step_seconds=None,
        ana_step_seconds=None, topology_overrides=None, config=None,
        app_axis=None, fidelity="steady", fault_plan=None, recovery=None,
        batch_actors=None,
    )
    kw.update(overrides)
    _machine_spec, _spec_obj, point = driver._resolve_point(**kw)
    return point


# --------------------------------------------------------- prefix keying


class TestPrefixKeys:
    def test_steps_share_a_key(self):
        keys = {forkpoint.prefix_key(_spec(steps=s)) for s in (8, 16, 99)}
        assert len(keys) == 1 and None not in keys

    def test_excluded_inputs(self):
        assert PREFIX_EXCLUDES == ("steps", "fault_plan", "recovery")
        plan = FaultPlan(
            events=(FaultEvent("server_crash", after_puts=5, target=0),),
            watchdog=WATCHDOG,
        )
        assert forkpoint.prefix_key(_spec(fault_plan=plan)) is None

    def test_non_steady_fidelity_has_no_key(self):
        assert forkpoint.prefix_key(_spec(fidelity="exact")) is None

    def test_put_get_round_trip(self):
        runcache.clear()
        run_coupled(steps=8, **STEADY)
        key = forkpoint.prefix_key(_spec(steps=8))
        snap = runcache.CACHE.get_prefix(key)
        assert snap is not None and snap.serves(16)
        # other direction: a fresh cache answers None, then serves
        # exactly what was put back under the same key
        runcache.clear()
        assert runcache.CACHE.get_prefix(key) is None
        runcache.CACHE.put_prefix(key, snap)
        assert runcache.CACHE.get_prefix(key) is snap
        assert runcache.CACHE.stats()["prefix_stores"] == 1

    def test_prefix_never_collides_with_full_entry(self):
        runcache.clear()
        result = run_coupled(steps=8, **STEADY)
        full_key = driver.point_key(**dict(STEADY, steps=8))
        assert runcache.CACHE.contains(full_key)
        assert runcache.CACHE.get_prefix(full_key) is None
        prefix = forkpoint.prefix_key(_spec(steps=8))
        assert prefix != full_key
        assert runcache.CACHE.get(prefix) is None
        assert result is not None


# ------------------------------------------------------ chaos fork host


class TestChaosFork:
    CELL_KW = dict(machine="titan", method="dataspaces", **CELL)

    def _plan(self, kind, **event_kw):
        return FaultPlan(events=(FaultEvent(kind, **event_kw),),
                         watchdog=WATCHDOG)

    def test_forked_cell_byte_identical_to_cold(self):
        plan = self._plan("server_crash", after_puts=18, target=0)
        runcache.clear()
        baseline = run_coupled(**self.CELL_KW)
        cold = run_coupled(fault_plan=plan, **self.CELL_KW)

        runcache.clear()
        key = driver.point_key(fault_plan=plan, **self.CELL_KW)
        trigger, reason = forkpoint.plan_trigger(plan, key=key)
        assert trigger is not None, reason
        host = forkpoint.ChaosForkHost([trigger])
        trunk = run_coupled(fork_host=host, **self.CELL_KW)
        collected = host.collect()
        assert not host.declines
        assert collected[key].forked == "chaos-trunk"
        assert_float_identical(trunk, baseline)
        assert_float_identical(collected[key], cold)

    def test_time_trigger_byte_identical_to_cold(self):
        plan = self._plan("transport_degrade", at=42.5, factor=32.0)
        runcache.clear()
        cold = run_coupled(fault_plan=plan, **self.CELL_KW)

        runcache.clear()
        key = driver.point_key(fault_plan=plan, **self.CELL_KW)
        trigger, reason = forkpoint.plan_trigger(plan, key=key)
        assert trigger is not None, reason
        host = forkpoint.ChaosForkHost([trigger])
        run_coupled(fork_host=host, **self.CELL_KW)
        collected = host.collect()
        assert_float_identical(collected[key], cold)

    def test_t0_fault_declines(self):
        plan = self._plan("drc_reject", at=0.0, duration=40.0)
        trigger, reason = forkpoint.plan_trigger(plan)
        assert trigger is None
        assert reason == "fork: fault fires at t=0 (no shared prefix exists)"

    def test_multi_event_plan_declines(self):
        plan = FaultPlan(
            events=(
                FaultEvent("server_crash", after_puts=10, target=0),
                FaultEvent("ost_slow", at=30.0, target=1, factor=8.0),
            ),
            watchdog=WATCHDOG,
        )
        trigger, reason = forkpoint.plan_trigger(plan)
        assert trigger is None
        assert reason == "fork: multi-event plans interleave with the prefix"

    def test_fork_pass_warms_cache_with_honest_declines(self):
        from repro.chaos.campaign import _fork_pass, build_campaign

        runcache.clear()
        declines = _fork_pass(7)
        # every drc_reject cell declined (t=0), everything else forked
        assert set(declines) == {
            f"drc_reject/{cell['library']}"
            for cell in build_campaign(7) if cell["fault"] == "drc_reject"
        }
        for reason in declines.values():
            assert reason.startswith("fork: fault fires at t=0")
        served = 0
        for cell in build_campaign(7):
            if cell["fault"] == "drc_reject":
                continue
            key = driver.point_key(
                machine=cell["machine"], method=cell["library"],
                fault_plan=cell["plan"], **CELL,
            )
            assert runcache.CACHE.contains(key), (
                cell["fault"], cell["library"])
            served += 1
        assert served == 20
