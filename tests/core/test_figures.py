"""Tests for the figure experiment runners (reduced parameters)."""

import pytest

from repro.core import figures as F
from repro.hpc import KB, MB


class TestFig2:
    def test_small_sweep_structure(self):
        table = F.fig2_end_to_end(
            "lammps",
            machines=("titan",),
            scales=[(32, 16), (512, 256)],
            methods=["mpiio", "flexpath"],
        )
        assert len(table.rows) == 2
        assert all(isinstance(row["mpiio"], float) for row in table.rows)
        assert all(row["sim-only"] > 0 for row in table.rows)

    def test_failure_cells_marked(self):
        table = F.fig2_end_to_end(
            "lammps",
            machines=("titan",),
            scales=[(8192, 4096)],
            methods=["dimes"],
        )
        assert "FAIL" in str(table.rows[0]["dimes"])


class TestFig3:
    def test_proportional_growth_and_remediation(self):
        table = F.fig3_problem_size(
            sizes=(512 * KB, 8 * MB, 128 * MB),
            methods=("flexpath", "dataspaces"),
            steps=2,
        )
        flex = table.column("flexpath")
        assert flex[0] < flex[1] < flex[2]
        # 128 MB succeeded only after the remediation note fired.
        assert isinstance(table.rows[2]["dataspaces"], float)
        assert any("doubled staging servers" in n for n in table.notes)

    def test_unremediated_failure_visible(self):
        table = F.fig3_problem_size(
            sizes=(128 * MB,), methods=("dataspaces",), steps=1,
            remediate=False,
        )
        assert "FAIL(OutOfRdmaMemory)" in str(table.rows[0]["dataspaces"])


class TestFig4:
    def test_handler_and_capacity_regimes(self):
        table = F.fig4_rdma_limits()
        by_size = {row["request size"]: row for row in table.rows}
        assert by_size["512.0 KB"]["max concurrent"] == 3675
        assert by_size["512.0 KB"]["binding limit"] == "handlers"
        assert by_size["1.0 MB"]["max concurrent"] == 1843
        assert by_size["1.0 MB"]["binding limit"] == "capacity"
        assert by_size["128.0 MB"]["max concurrent"] == 14


class TestFig5:
    def test_timeline_rows_and_lammps_magnitude(self):
        table = F.fig5_memory_timeline(
            methods=("dataspaces", "decaf"), nsim=64, nana=32, steps=2,
        )
        ds_rows = [r for r in table.rows if r["method"] == "dataspaces"]
        assert len(ds_rows) > 2
        peak = max(r["sim (MB)"] for r in ds_rows)
        assert peak == pytest.approx(400, rel=0.2)  # Figure 5's ~400 MB
        decaf_rows = [r for r in table.rows if r["method"] == "decaf"]
        decaf_peak = max(r["sim (MB)"] for r in decaf_rows)
        assert decaf_peak > 1.25 * peak  # "Decaf needs 40% more memory"


class TestFig6:
    def test_quadratic_dataspaces_flat_dimes(self):
        table = F.fig6_index_cost(sizes=(4 * MB, 16 * MB, 64 * MB))
        ds = table.column("dataspaces server (MB)")
        dimes = table.column("dimes server (MB)")
        # DataSpaces grows superlinearly (quadratic trend).
        assert ds[2] / ds[0] > 4
        # DIMES stays small and ~flat.
        assert max(dimes) < 0.2 * ds[2]

    def test_paper_magnitude_at_64mb(self):
        table = F.fig6_index_cost(sizes=(64 * MB,))
        ds = table.rows[0]["dataspaces server (MB)"]
        assert 3000 < ds < 9000  # ~6 GB in the paper
        dimes = table.rows[0]["dimes server (MB)"]
        assert dimes < 400  # ~154 MB in the paper


class TestFig7:
    def test_breakdown_categories(self):
        table = F.fig7_memory_breakdown()
        ds_cats = {r["category"] for r in table.rows if r["method"] == "dataspaces"}
        assert "staged" in ds_cats
        assert "index" in ds_cats
        decaf = {
            r["category"]: r["MB"] for r in table.rows if r["method"] == "decaf"
        }
        # 7x expansion of the 256 MB staged per Decaf server -> ~1.8 GB.
        assert decaf["staged-rich"] == pytest.approx(1792, rel=0.35)


class TestFig8:
    def test_mismatched_layout_flagged(self):
        table = F.fig8_layout_mapping()
        mismatched = [r for r in table.rows if r["layout"] == "mismatched"]
        assert all(r["n-to-1"] == "yes" for r in mismatched)
        matched = [r for r in table.rows if r["layout"] == "matched"]
        assert all(r["n-to-1"] == "no" for r in matched)


class TestFig9:
    def test_matched_layout_wins(self):
        table = F.fig9_layout_impact(nsim=256, nana=128, steps=3)
        times = {r["layout"]: r["end-to-end (s)"] for r in table.rows}
        assert times["matched"] < times["mismatched"]
        assert any("faster" in n for n in table.notes)


class TestFig10:
    def test_rdma_wins_and_socket_failure(self):
        table = F.fig10_transport(
            workflows=("lammps",), nsim=256, nana=128, steps=3,
        )
        gains = [r["rdma gain %"] for r in table.rows if r["rdma gain %"] is not None]
        assert all(g >= 0 for g in gains)
        plain = table.rows[-2]
        assert "FAIL(OutOfSockets)" in str(plain["socket"])
        pooled = table.rows[-1]
        assert isinstance(pooled["socket"], float)  # the Table IV resolve


class TestFig11:
    def test_memory_drops_e2e_insensitive(self):
        table = F.fig11_decaf_servers(server_counts=(8, 64), steps=2)
        mem = table.column("memory/server (MB)")
        e2e = table.column("end-to-end (s)")
        assert mem[1] < 0.3 * mem[0]  # paper: -83.5%
        assert abs(e2e[1] - e2e[0]) / e2e[0] < 0.10  # paper: only -5.5%


class TestFig12:
    def test_server_scaling_gains(self):
        table = F.fig12_dataspaces_servers(server_counts=(1, 2), steps=3)
        e2e = table.column("end-to-end (s)")
        staging = table.column("staging (s)")
        assert e2e[1] <= e2e[0]
        assert staging[1] < staging[0]


class TestFig13:
    def test_shared_mode_table(self):
        table = F.fig13_shared_memory(workflows=("lammps",), nsim=128, nana=64,
                                      steps=3)
        decaf_row = table.rows[-1]
        assert "SchedulerPolicyViolation" in str(decaf_row["shared"])
        flex_row = table.rows[0]
        assert isinstance(flex_row["shared"], float)
