"""Unit tests for TableResult rendering and the static tables."""

import pytest

from repro.core import (
    TableResult,
    loc,
    table1_build_configs,
    table2_workflows,
    table3_usability,
    table5_findings,
    total_loc,
)
from repro.core.findings import FINDINGS
from repro.core.usability import RECIPES


class TestTableResult:
    def test_add_and_column(self):
        t = TableResult("X", "demo", ["a", "b"])
        t.add(a=1, b=2)
        t.add(a=3, b=4)
        assert t.column("a") == [1, 3]
        assert t.column("missing") == [None, None]

    def test_render_contains_all_cells(self):
        t = TableResult("Fig 0", "demo", ["name", "value"])
        t.add(name="alpha", value=1.25)
        t.note("a note")
        text = t.render()
        assert "Fig 0: demo" in text
        assert "alpha" in text
        assert "1.2" in text
        assert "note: a note" in text

    def test_render_missing_cell_as_dash(self):
        t = TableResult("T", "demo", ["a", "b"])
        t.add(a="x")
        assert "| -" in t.render() or " - " in t.render()

    def test_render_empty_table(self):
        t = TableResult("T", "demo", ["only"])
        assert "only" in t.render()


class TestStaticTables:
    def test_table1_covers_all_methods(self):
        table = table1_build_configs()
        methods = " ".join(str(row["method"]) for row in table.rows)
        for name in ("DataSpaces", "MPI-IO", "Flexpath", "Decaf"):
            assert name in methods

    def test_table2_reports_paper_output_sizes(self):
        table = table2_workflows()
        by_name = {row["workflow"]: row for row in table.rows}
        # LAMMPS ~20 MB/processor, Laplace 128 MB/processor.
        assert by_name["lammps"]["bytes/proc @64"] == pytest.approx(20.48e6, rel=0.02)
        assert by_name["laplace"]["bytes/proc @64"] == 128 * 1024 * 1024

    def test_table5_matrix_matches_paper(self):
        table = table5_findings()
        assert len(table.rows) == 8
        rows = {row["finding"]: row for row in table.rows}
        assert rows["Finding 1"]["DataSpaces"] == "+"
        assert rows["Finding 1"]["DIMES"] == "-"
        assert rows["Finding 2"]["Decaf"] == "+"
        assert rows["Finding 2"]["DataSpaces"] == "+/-"
        assert rows["Finding 8"]["Decaf"] == "+"
        assert rows["Finding 8"]["Flexpath"] == "-"

    def test_every_finding_has_a_verifier(self):
        assert all(f.verify is not None for f in FINDINGS)


class TestUsability:
    def test_loc_ignores_blank_and_comments(self):
        snippet = """
        # comment
        a = 1

        b = 2
        """
        assert loc(snippet) == 2

    def test_recipes_cover_all_libraries(self):
        libraries = {r.library for r in RECIPES}
        assert libraries == {
            "DataSpaces/DIMES (ADIOS)",
            "DataSpaces/DIMES (native)",
            "Flexpath",
            "Decaf",
        }

    def test_paper_orderings_hold_in_our_recipes(self):
        table = table3_usability()
        by_key = {
            (row["library"], row["category"]): row["LOC (ours)"]
            for row in table.rows
        }
        native_api = by_key[("DataSpaces/DIMES (native)", "Data staging API")]
        adios_api = by_key[("DataSpaces/DIMES (ADIOS)", "ADIOS data staging API")]
        assert native_api > 1.5 * adios_api
        flexpath_build = by_key[("Flexpath", "Build options")]
        ds_build = by_key[("DataSpaces/DIMES (ADIOS)", "Build options")]
        assert flexpath_build < ds_build
        assert ("Decaf", "Bootstrap script") in by_key

    def test_measured_loc_close_to_paper(self):
        for recipe in RECIPES:
            assert recipe.measured_loc == pytest.approx(recipe.paper_loc, rel=0.35)

    def test_total_loc(self):
        assert total_loc("Flexpath") == sum(
            r.measured_loc for r in RECIPES if r.library == "Flexpath"
        )
        assert total_loc("nonexistent") == 0
