"""Unit tests for table export and the CLI entry point."""

import json
import os

import pytest

from repro.core import TableResult
from repro.core.export import from_json, to_csv, to_json, write_files
from repro.__main__ import main as cli_main


def sample_table():
    t = TableResult("Figure X", "demo table", ["name", "value"])
    t.add(name="a", value=1.5)
    t.add(name="b", value=None)
    t.note("a note")
    return t


class TestExport:
    def test_json_roundtrip(self):
        t = sample_table()
        rebuilt = from_json(to_json(t))
        assert rebuilt.ident == t.ident
        assert rebuilt.columns == t.columns
        assert rebuilt.rows == t.rows
        assert rebuilt.notes == t.notes

    def test_json_is_valid(self):
        payload = json.loads(to_json(sample_table()))
        assert payload["id"] == "Figure X"
        assert len(payload["rows"]) == 2

    def test_csv_structure(self):
        text = to_csv(sample_table())
        lines = text.strip().splitlines()
        assert lines[0] == "# a note"
        assert lines[1] == "name,value"
        assert lines[2] == "a,1.5"

    def test_write_files(self, tmp_path):
        stem = str(tmp_path / "out")
        write_files(sample_table(), stem)
        assert os.path.exists(stem + ".json")
        assert os.path.exists(stem + ".csv")


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out
        assert "table5" in out

    def test_study_selected_with_export(self, tmp_path, capsys):
        export = str(tmp_path / "exp")
        assert cli_main(["study", "fig4", "--export", export]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert os.path.exists(os.path.join(export, "fig4.csv"))

    def test_no_command_prints_help(self, capsys):
        assert cli_main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()
