"""Golden check: regenerated tables must match ``results/`` byte for byte.

The committed ``results/`` files are the reproduction's reference
output.  Because the simulation is deterministic, any byte difference
in a regenerated table means an unintended behaviour change — exactly
what performance work (event-loop rewrites, clustering, caching) must
not introduce.  A representative cross-section of experiments is
regenerated here; the complete sweep is ``python -m repro study
--export`` diffed against ``results/``.
"""

import os

import pytest

from repro.core.export import to_csv, to_json
from repro.core.study import Study

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "results")

#: light but representative: one end-to-end sweep (fig2a), analytic
#: figures (fig6/fig8), a coupled shared-node sweep (fig13), and every
#: static table
GOLDEN_IDS = [
    "fig2a", "fig6", "fig8", "fig13",
    "table1", "table2", "table3", "table4",
    "portability", "conclusions",
]


def _golden(name: str) -> str:
    path = os.path.join(RESULTS_DIR, name)
    assert os.path.exists(path), f"missing golden file {name}"
    # newline="" preserves the \r\n row terminators csv.writer emits
    with open(path, encoding="utf-8", newline="") as fh:
        return fh.read()


@pytest.mark.parametrize("ident", GOLDEN_IDS)
def test_regenerated_table_matches_golden(ident):
    table = Study().experiments()[ident]()
    assert to_csv(table) == _golden(f"{ident}.csv")
    assert to_json(table) == _golden(f"{ident}.json")
