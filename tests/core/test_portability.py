"""Tests for the generated Section IV-B portability assessment."""

import pytest

from repro.core import Study, table_portability
from repro.core.portability import (
    adios_integration,
    gpu_bounce_overhead,
    transport_support,
)


def test_transport_support_matches_claims():
    support = transport_support()
    assert support["dataspaces"] == ["ugni", "nnti", "verbs", "tcp"]
    assert support["decaf"] == ["mpi"]
    assert "tcp" in support["flexpath"]


def test_adios_integration_matrix():
    matrix = adios_integration()
    assert matrix["dataspaces"]
    assert matrix["dimes"]
    assert matrix["flexpath"]
    assert not matrix["decaf"]  # Decaf stands outside the framework


def test_gpu_bounce_costs_measurable_time():
    ratio = gpu_bounce_overhead()
    assert ratio > 1.05


def test_table_structure():
    table = table_portability()
    levels = {row["level"] for row in table.rows}
    assert levels == {"hardware", "transport", "application"}
    assert "portability" in Study().experiments()
