"""Tests for the generated Section V conclusions."""

import pytest

from repro.core.conclusions import (
    conclusions,
    in_memory_speedup_at_scale,
    portability_matrix,
    resource_constrained_failures,
)


def test_in_memory_beats_mpiio_at_scale():
    speedups = in_memory_speedup_at_scale(nsim=2048, nana=1024)
    assert speedups  # at least one in-memory method completed
    assert all(s > 1.0 for s in speedups.values())


def test_resource_failures_cover_three_classes():
    failures = resource_constrained_failures()
    assert set(failures) == {"OutOfRdmaHandlers", "DrcOverload", "OutOfSockets"}


def test_portability_matrix_complete():
    matrix = portability_matrix()
    assert matrix["dataspaces"] == ["ugni", "verbs", "tcp"]
    assert matrix["flexpath"] == ["nnti", "tcp"]
    assert matrix["decaf"] == ["mpi"]


def test_conclusions_table_has_four_claims():
    table = conclusions()
    assert len(table.rows) == 4
    text = table.render()
    assert "beats post-processing" in text
    assert "resource availability" in text
    assert "portable" in text
    assert "continued investment" in text
