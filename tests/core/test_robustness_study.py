"""Tests for the Table IV lesson runner and the Study orchestrator."""

import pytest

from repro.core import LESSONS, Study, table4_robustness


class TestLessons:
    def test_all_five_paper_issues_covered(self):
        issues = {lesson.issue for lesson in LESSONS}
        assert issues == {
            "Out of RDMA memory",
            "Data dimension overflow",
            "Out of main memory",
            "Out of sockets",
            "Out of DRC",
        }

    @pytest.mark.parametrize("lesson", LESSONS, ids=lambda l: l.issue)
    def test_lesson_triggers_and_resolves(self, lesson):
        assert lesson.trigger() is None, f"{lesson.issue}: trigger failed"
        assert lesson.resolve() is None, f"{lesson.issue}: resolve failed"

    def test_table4_all_green(self):
        table = table4_robustness()
        for row in table.rows:
            assert row["failure reproduced"] == "yes"
            assert row["resolve demonstrated"] == "yes"


class TestStudy:
    def test_experiment_registry_covers_all_figures_and_tables(self):
        study = Study()
        idents = set(study.experiments())
        expected = {f"fig{i}" for i in range(3, 14)} | {"fig2a", "fig2b"}
        expected |= {"fig_sst", "fig_pmem"}  # beyond-the-paper families
        expected |= {f"table{i}" for i in range(1, 6)}
        expected |= {"portability", "conclusions"}
        assert idents == expected

    def test_run_selected_and_report(self):
        study = Study()
        results = study.run(only=["fig4", "table1", "table5"])
        assert set(results) == {"fig4", "table1", "table5"}
        report = study.report()
        assert "Figure 4" in report
        assert "Table I" in report
        assert "Table V" in report
