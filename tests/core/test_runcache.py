"""The content-addressed run cache."""

import dataclasses
import multiprocessing
import pickle
import types

import pytest

from repro.core import runcache
from repro.core.runcache import RunCache, config_key
from repro.hpc.machines import get_machine
from repro.staging.base import StagingConfig
from repro.staging.ndarray import Variable
from repro.workflows import run_coupled
from repro.workflows.trace import ActivityTrace


@pytest.fixture(autouse=True)
def clean_cache():
    runcache.clear()
    yield
    runcache.clear()


class TestConfigKey:
    BASE = dict(machine="titan", workflow="lammps", method="dataspaces",
                nsim=32, nana=16, steps=5)

    def test_stable(self):
        assert config_key(**self.BASE) == config_key(**self.BASE)

    def test_kwarg_order_irrelevant(self):
        forward = config_key(**self.BASE)
        backward = config_key(**dict(reversed(list(self.BASE.items()))))
        assert forward == backward

    @pytest.mark.parametrize("field,value", [
        ("machine", "cori"), ("method", "dimes"), ("nsim", 64), ("steps", 6),
    ])
    def test_sensitive_to_every_input(self, field, value):
        assert config_key(**{**self.BASE, field: value}) != config_key(**self.BASE)

    def test_dataclasses_canonicalized(self):
        a = config_key(config=StagingConfig(), variable=Variable("v", (8, 8)))
        b = config_key(config=StagingConfig(), variable=Variable("v", (8, 8)))
        c = config_key(config=StagingConfig(max_versions=2),
                       variable=Variable("v", (8, 8)))
        assert a == b != c

    def test_uncanonicalizable_rejected(self):
        with pytest.raises(TypeError):
            config_key(callback=lambda: None)


class TestRunCache:
    def test_memory_roundtrip(self):
        cache = RunCache()
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.hits == 1
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_disk_roundtrip_strips_library(self, tmp_path):
        cache = RunCache(disk_dir=str(tmp_path))
        result = run_coupled(machine="titan", method="dataspaces",
                             nsim=32, nana=16)
        assert result.library is not None
        cache.put("k", result)

        reloaded = RunCache(disk_dir=str(tmp_path)).get("k")
        assert reloaded is not None
        assert reloaded.library is None  # generators do not pickle
        assert reloaded.end_to_end == result.end_to_end
        assert result.library is not None  # original untouched

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = RunCache(disk_dir=str(tmp_path))
        (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
        assert cache.get("bad") is None

    def test_truncated_entry_recomputed_not_raised(self, tmp_path):
        cache = RunCache(disk_dir=str(tmp_path))
        cache.put("k", _entry(1))
        path = tmp_path / "k.pkl"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        fresh = RunCache(disk_dir=str(tmp_path))
        assert fresh.get("k") is None  # miss, no exception
        fresh.put("k", _entry(2))  # recompute overwrites the wreck
        assert RunCache(disk_dir=str(tmp_path)).get("k").payload == 2

    def test_seed_is_memory_only(self, tmp_path):
        cache = RunCache(disk_dir=str(tmp_path))
        cache.seed("k", _entry(7))
        assert not list(tmp_path.iterdir())  # nothing on disk
        assert cache.get("k").payload == 7
        assert cache.misses == 0


def _entry(payload):
    """A picklable stand-in with the ``library`` attr put() strips."""
    return types.SimpleNamespace(library=None, payload=payload,
                                 pad="x" * 20000)


def _hammer(directory, worker, writes):
    """Write the same small key set over and over (spawn target)."""
    cache = RunCache(disk_dir=directory)
    for i in range(writes):
        cache.put(f"key{i % 4}", _entry((worker, i)))


class TestConcurrentDisk:
    """The ``--jobs`` contract: many processes, one cache directory."""

    def test_concurrent_writers_and_reader(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer, args=(str(tmp_path), w, 50))
            for w in range(3)
        ]
        for p in procs:
            p.start()
        # read continuously while the writers race on the same keys
        reader = RunCache(disk_dir=str(tmp_path))
        while any(p.is_alive() for p in procs):
            for i in range(4):
                entry = reader.get(f"key{i}")
                assert entry is None or isinstance(entry.payload, tuple)
            reader._memory.clear()  # force disk reads every round
        for p in procs:
            p.join()
            assert p.exitcode == 0
        # every surviving entry is complete, and no temp files leak
        for i in range(4):
            assert RunCache(disk_dir=str(tmp_path)).get(f"key{i}") is not None
        leftovers = [n for n in (p.name for p in tmp_path.iterdir())
                     if n.endswith(".tmp")]
        assert leftovers == []


class TestDriverIntegration:
    KW = dict(machine="titan", method="dataspaces", nsim=32, nana=16)

    def test_second_call_is_a_hit(self):
        first = run_coupled(**self.KW)
        hits = runcache.CACHE.hits
        second = run_coupled(**self.KW)
        assert second is first
        assert runcache.CACHE.hits == hits + 1

    def test_fidelity_in_key(self):
        exact = run_coupled(machine="titan", method=None, nsim=32, nana=16)
        clustered = run_coupled(machine="titan", method=None, nsim=32, nana=16,
                                fidelity="clustered")
        assert clustered is not exact

    def test_traced_runs_bypass(self):
        cached = run_coupled(**self.KW)
        traced = run_coupled(trace=ActivityTrace(), **self.KW)
        assert traced is not cached
        # and the traced run did not poison the cache
        assert run_coupled(**self.KW) is cached

    def test_ad_hoc_machine_spec_bypasses(self):
        spec = dataclasses.replace(get_machine("titan"))
        assert spec is not get_machine("titan")
        first = run_coupled(machine=spec, method=None, nsim=32, nana=16)
        second = run_coupled(machine=spec, method=None, nsim=32, nana=16)
        assert first is not second
        assert first.end_to_end == second.end_to_end

    def test_cached_result_pickles(self, tmp_path):
        runcache.enable_disk(str(tmp_path))
        try:
            run_coupled(**self.KW)
            files = list(tmp_path.glob("*.pkl"))
            assert len(files) == 1
            with open(files[0], "rb") as fh:
                assert pickle.load(fh).end_to_end > 0
        finally:
            runcache.CACHE.disk_dir = None
