"""Unit tests for the transport layer."""

import pytest

from repro.hpc import (
    CORI,
    Cluster,
    DrcOverload,
    MB,
    OutOfRdmaMemory,
    OutOfSockets,
    TITAN,
    TransportError,
)
from repro.sim import Environment
from repro.transport import (
    Endpoint,
    MpiMsgTransport,
    RdmaTransport,
    ShmTransport,
    TcpTransport,
    make_transport,
)


def setup_cluster(machine=TITAN):
    env = Environment()
    cluster = Cluster(env, machine)
    return env, cluster


def endpoints(cluster, src_node=0, dst_node=1, job="job"):
    return (
        Endpoint(cluster.node(src_node), "client", job),
        Endpoint(cluster.node(dst_node), "server", job),
    )


def run_move(env, transport, src, dst, nbytes, **kwargs):
    def proc(env):
        yield env.process(transport.move(src, dst, nbytes, **kwargs))

    env.process(proc(env))
    env.run()


class TestFactory:
    def test_known_names(self):
        env, cluster = setup_cluster()
        assert isinstance(make_transport("ugni", cluster), RdmaTransport)
        assert isinstance(make_transport("nnti", cluster), RdmaTransport)
        assert isinstance(make_transport("TCP", cluster), TcpTransport)
        assert isinstance(make_transport("shm", cluster), ShmTransport)
        assert isinstance(make_transport("mpi", cluster), MpiMsgTransport)

    def test_unknown_name(self):
        env, cluster = setup_cluster()
        with pytest.raises(ValueError):
            make_transport("carrier-pigeon", cluster)

    def test_unknown_rdma_api(self):
        env, cluster = setup_cluster()
        with pytest.raises(ValueError):
            RdmaTransport(cluster, api="quantum")


class TestRdmaTransport:
    def test_move_pays_time_and_accounts(self):
        env, cluster = setup_cluster()
        t = RdmaTransport(cluster, "ugni")
        src, dst = endpoints(cluster)
        run_move(env, t, src, dst, 55 * MB)
        assert t.bytes_moved == 55 * MB
        assert t.operations == 1
        assert env.now == pytest.approx(0.02, rel=0.05)

    def test_transient_registration_released(self):
        env, cluster = setup_cluster()
        t = RdmaTransport(cluster, "ugni")
        src, dst = endpoints(cluster)
        run_move(env, t, src, dst, 10 * MB)
        assert src.node.rdma.registered == 0
        assert dst.node.rdma.registered == 0

    def test_registration_failure_propagates_and_cleans_up(self):
        env, cluster = setup_cluster()
        t = RdmaTransport(cluster, "ugni")
        src, dst = endpoints(cluster)
        # Pre-claim almost all RDMA memory on the destination.
        dst.node.rdma.register(1800 * MB)

        def proc(env):
            yield env.process(t.move(src, dst, 100 * MB))

        env.process(proc(env))
        with pytest.raises(OutOfRdmaMemory):
            env.run()
        # The source's transient registration must have been rolled back.
        assert src.node.rdma.registered == 0

    def test_registered_buffers_skip_transient_registration(self):
        env, cluster = setup_cluster()
        t = RdmaTransport(cluster, "ugni")
        src, dst = endpoints(cluster)
        dst.node.rdma.register(1800 * MB)  # nearly full
        # dst_registered=True promises a resident buffer; no new claim.
        run_move(env, t, src, dst, 100 * MB, dst_registered=True)
        assert t.operations == 1

    def test_nnti_slower_than_ugni(self):
        env1, c1 = setup_cluster()
        ugni = RdmaTransport(c1, "ugni")
        run_move(env1, ugni, *endpoints(c1), 100 * MB)
        env2, c2 = setup_cluster()
        nnti = RdmaTransport(c2, "nnti")
        run_move(env2, nnti, *endpoints(c2), 100 * MB)
        assert env2.now > env1.now

    def test_drc_credential_acquired_once_per_node_on_cori(self):
        env, cluster = setup_cluster(CORI)
        t = RdmaTransport(cluster, "ugni")
        src, dst = endpoints(cluster)

        def proc(env):
            yield env.process(t.move(src, dst, 1 * MB))
            yield env.process(t.move(src, dst, 1 * MB))

        env.process(proc(env))
        env.run()
        assert cluster.drc.requests_served == 2  # two nodes, once each

    def test_no_drc_on_titan(self):
        env, cluster = setup_cluster(TITAN)
        t = RdmaTransport(cluster, "ugni")
        run_move(env, t, *endpoints(cluster), 1 * MB)
        assert cluster.drc is None

    def test_drc_overload_propagates(self):
        env, cluster = setup_cluster(CORI)
        cluster.drc.max_pending = 1
        t = RdmaTransport(cluster, "ugni")

        def proc(env, i):
            src = Endpoint(cluster.node(2 * i), f"c{i}", f"job{i}")
            dst = Endpoint(cluster.node(2 * i + 1), f"s{i}", f"job{i}")
            yield env.process(t.move(src, dst, 1 * MB))

        for i in range(3):
            env.process(proc(env, i))
        with pytest.raises(DrcOverload):
            env.run()

    def test_teardown_releases_credentials(self):
        env, cluster = setup_cluster(CORI)
        t = RdmaTransport(cluster, "ugni")
        src, dst = endpoints(cluster)
        run_move(env, t, src, dst, 1 * MB)
        t.teardown(src, dst)
        assert cluster.drc._node_jobs[src.node.node_id] == set()


class TestTcpTransport:
    def test_connection_reused_across_moves(self):
        env, cluster = setup_cluster()
        t = TcpTransport(cluster)
        src, dst = endpoints(cluster)

        def proc(env):
            yield env.process(t.move(src, dst, 1 * MB))
            yield env.process(t.move(src, dst, 1 * MB))

        env.process(proc(env))
        env.run()
        assert t.open_connections == 1
        assert src.node.socket_table("client").in_use == 1

    def test_slower_than_rdma(self):
        env1, c1 = setup_cluster()
        run_move(env1, RdmaTransport(c1, "ugni"), *endpoints(c1), 100 * MB)
        env2, c2 = setup_cluster()
        run_move(env2, TcpTransport(c2), *endpoints(c2), 100 * MB)
        assert env2.now > env1.now * 1.2

    def test_descriptor_exhaustion(self):
        env, cluster = setup_cluster()
        t = TcpTransport(cluster)
        server = Endpoint(cluster.node(0), "server")
        server.node.socket_table("server").max_descriptors = 3

        def proc(env, i):
            client = Endpoint(cluster.node(1 + i), f"client{i}")
            yield env.process(t.move(client, server, 1 * MB))

        for i in range(4):
            env.process(proc(env, i))
        with pytest.raises(OutOfSockets):
            env.run()

    def test_teardown_closes_connection(self):
        env, cluster = setup_cluster()
        t = TcpTransport(cluster)
        src, dst = endpoints(cluster)
        run_move(env, t, src, dst, 1 * MB)
        t.teardown(src, dst)
        assert t.open_connections == 0
        assert src.node.socket_table("client").in_use == 0

    def test_no_rdma_consumed(self):
        env, cluster = setup_cluster()
        t = TcpTransport(cluster)
        src, dst = endpoints(cluster)
        run_move(env, t, src, dst, 10 * MB)
        assert src.node.rdma.registered == 0


class TestShmTransport:
    def test_intra_node_copy(self):
        env, cluster = setup_cluster()
        t = ShmTransport(cluster)
        node = cluster.node(0)
        src = Endpoint(node, "sim")
        dst = Endpoint(node, "analytics")
        run_move(env, t, src, dst, 100 * MB)
        assert t.bytes_moved == 100 * MB

    def test_faster_than_network(self):
        env1, c1 = setup_cluster()
        t1 = ShmTransport(c1)
        node = c1.node(0)
        run_move(env1, t1, Endpoint(node, "a"), Endpoint(node, "b"), 100 * MB)
        env2, c2 = setup_cluster()
        run_move(env2, RdmaTransport(c2, "ugni"), *endpoints(c2), 100 * MB)
        assert env1.now < env2.now

    def test_cross_node_rejected(self):
        env, cluster = setup_cluster()
        t = ShmTransport(cluster)
        src, dst = endpoints(cluster)

        def proc(env):
            yield env.process(t.move(src, dst, 1))

        env.process(proc(env))
        with pytest.raises(TransportError):
            env.run()


class TestMpiMsgTransport:
    def test_move_accounts(self):
        env, cluster = setup_cluster()
        t = MpiMsgTransport(cluster)
        run_move(env, t, *endpoints(cluster), 10 * MB)
        assert t.bytes_moved == 10 * MB

    def test_portability_no_special_resources(self):
        env, cluster = setup_cluster()
        t = MpiMsgTransport(cluster)
        src, dst = endpoints(cluster)
        run_move(env, t, src, dst, 10 * MB)
        assert src.node.rdma.registered == 0
        assert src.node.socket_table("client").in_use == 0


class TestTcpPool:
    """Table IV's socket-pool resolve as a transport option."""

    def test_factory_name(self):
        env, cluster = setup_cluster()
        t = make_transport("tcp-pool", cluster)
        assert isinstance(t, TcpTransport)
        assert t.pool_size == 64

    def test_invalid_pool_size(self):
        env, cluster = setup_cluster()
        with pytest.raises(ValueError):
            TcpTransport(cluster, pool_size=0)

    def test_pool_caps_descriptors(self):
        env, cluster = setup_cluster()
        t = TcpTransport(cluster, pool_size=2)
        server = Endpoint(cluster.node(0), "server")

        def proc(env, i):
            client = Endpoint(cluster.node(1 + i), f"client{i}")
            yield env.process(t.move(client, server, 1 * MB))

        for i in range(6):
            env.process(proc(env, i))
        env.run()
        # Only pool_size descriptors ever open at the server.
        assert server.node.socket_table("server").peak <= 2
        assert t.multiplexed_moves > 0

    def test_multiplexing_costs_latency(self):
        env1, c1 = setup_cluster()
        plain = TcpTransport(c1)
        server1 = Endpoint(c1.node(0), "server")

        def moves(env, t, server, cluster):
            for i in range(6):
                client = Endpoint(cluster.node(1 + i), f"client{i}")
                yield env.process(t.move(client, server, 1024))

        env1.process(moves(env1, plain, server1, c1))
        env1.run()
        env2, c2 = setup_cluster()
        pooled = TcpTransport(c2, pool_size=1)
        server2 = Endpoint(c2.node(0), "server")
        env2.process(moves(env2, pooled, server2, c2))
        env2.run()
        assert env2.now > env1.now  # the efficiency compromise

    def test_pooled_workflow_survives_big_scale(self):
        from repro.workflows import run_coupled

        plain = run_coupled("titan", "lammps", "dataspaces",
                            nsim=2048, nana=1024, steps=1, transport="tcp")
        pooled = run_coupled("titan", "lammps", "dataspaces",
                             nsim=2048, nana=1024, steps=1,
                             transport="tcp-pool")
        assert not plain.ok and "OutOfSockets" in plain.failure
        assert pooled.ok
