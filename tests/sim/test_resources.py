"""Unit tests for Resource, Container and Store."""

import pytest

from repro.sim import Container, ContainerError, Environment, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity_is_immediate(self):
        env = Environment()
        res = Resource(env, capacity=2)
        grants = []

        def proc(env):
            req = res.request()
            yield req
            grants.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert grants == [0, 0]
        assert res.count == 2

    def test_queueing_and_fifo_release(self):
        env = Environment()
        res = Resource(env, capacity=1)
        trace = []

        def proc(env, name, hold):
            with res.request() as req:
                yield req
                trace.append(("got", name, env.now))
                yield env.timeout(hold)

        env.process(proc(env, "a", 2))
        env.process(proc(env, "b", 2))
        env.process(proc(env, "c", 2))
        env.run()
        assert trace == [("got", "a", 0), ("got", "b", 2), ("got", "c", 4)]

    def test_queue_length_reporting(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def waiter(env):
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1)
        assert res.queue_length == 1

    def test_release_unqueued_request_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        res.release(req)
        res.release(req)  # double release must not corrupt state
        assert res.count == 0


class TestContainer:
    def test_invalid_construction(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=-1)
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=6)

    def test_try_get_success_and_failure(self):
        env = Environment()
        c = Container(env, capacity=100, init=50)
        assert c.try_get(30)
        assert c.level == 20
        assert not c.try_get(30)
        assert c.level == 20

    def test_get_blocks_until_put(self):
        env = Environment()
        c = Container(env, capacity=100, init=0)
        got_at = []

        def getter(env):
            yield c.get(40)
            got_at.append(env.now)

        def putter(env):
            yield env.timeout(5)
            c.put(40)

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert got_at == [5]
        assert c.level == 0

    def test_get_more_than_capacity_rejected(self):
        env = Environment()
        c = Container(env, capacity=10)
        with pytest.raises(ContainerError):
            c.get(11)

    def test_put_over_capacity_rejected(self):
        env = Environment()
        c = Container(env, capacity=10, init=5)
        with pytest.raises(ContainerError):
            c.put(6)

    def test_fifo_ordering_prevents_starvation(self):
        env = Environment()
        c = Container(env, capacity=100, init=0)
        order = []

        def getter(env, name, amount):
            yield c.get(amount)
            order.append(name)

        env.process(getter(env, "big", 80))
        env.process(getter(env, "small", 10))

        def putter(env):
            yield env.timeout(1)
            c.put(50)  # enough for small, but big is first in line
            yield env.timeout(1)
            c.put(50)

        env.process(putter(env))
        env.run()
        assert order == ["big", "small"]

    def test_negative_amounts_rejected(self):
        env = Environment()
        c = Container(env, capacity=10, init=10)
        with pytest.raises(ContainerError):
            c.get(-1)
        with pytest.raises(ContainerError):
            c.put(-1)
        with pytest.raises(ContainerError):
            c.try_get(-1)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def proc(env):
            yield store.put("hello")
            item = yield store.get()
            got.append(item)

        env.process(proc(env))
        env.run()
        assert got == ["hello"]

    def test_get_blocks_until_item_arrives(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(env):
            item = yield store.get()
            got.append((env.now, item))

        def putter(env):
            yield env.timeout(7)
            yield store.put("late")

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert got == [(7, "late")]

    def test_bounded_store_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def putter(env):
            yield store.put(1)
            times.append(("put1", env.now))
            yield store.put(2)
            times.append(("put2", env.now))

        def getter(env):
            yield env.timeout(5)
            yield store.get()

        env.process(putter(env))
        env.process(getter(env))
        env.run()
        assert times == [("put1", 0), ("put2", 5)]

    def test_get_with_predicate_filters(self):
        env = Environment()
        store = Store(env)
        got = []

        def proc(env):
            yield store.put({"tag": "a", "v": 1})
            yield store.put({"tag": "b", "v": 2})
            item = yield store.get(lambda m: m["tag"] == "b")
            got.append(item["v"])
            item = yield store.get()
            got.append(item["v"])

        env.process(proc(env))
        env.run()
        assert got == [2, 1]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def proc(env):
            for i in range(4):
                yield store.put(i)
            for _ in range(4):
                item = yield store.get()
                got.append(item)

        env.process(proc(env))
        env.run()
        assert got == [0, 1, 2, 3]

    def test_items_snapshot(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            yield store.put("x")
            yield store.put("y")

        env.process(proc(env))
        env.run()
        assert store.items == ["x", "y"]
