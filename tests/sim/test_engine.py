"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Environment, Event, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(3.5)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [3.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2


def test_processes_interleave_deterministically():
    env = Environment()
    trace = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        trace.append((env.now, name))
        yield env.timeout(delay)
        trace.append((env.now, name))

    env.process(proc(env, "a", 1))
    env.process(proc(env, "b", 2))
    env.run()
    # At t=2 both b's first and a's second timeout fire; b's was
    # scheduled earlier (t=0 vs t=1) so it runs first.
    assert trace == [(1, "a"), (2, "b"), (2, "a"), (4, "b")]


def test_tie_break_is_fifo():
    env = Environment()
    trace = []

    def proc(env, name):
        yield env.timeout(1)
        trace.append(name)

    for name in ("x", "y", "z"):
        env.process(proc(env, name))
    env.run()
    assert trace == ["x", "y", "z"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env):
        value = yield ev
        got.append(value)

    def firer(env):
        yield env.timeout(4)
        ev.succeed(42)

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert got == [42]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("kaput")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="kaput"):
        env.run()


def test_process_return_value_via_yield():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1)
        return 7

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == [7]


def test_all_of_waits_for_every_event():
    env = Environment()
    done_at = []

    def proc(env):
        t1 = env.timeout(1, value="one")
        t2 = env.timeout(5, value="five")
        result = yield env.all_of([t1, t2])
        done_at.append(env.now)
        assert set(result.values()) == {"one", "five"}

    env.process(proc(env))
    env.run()
    assert done_at == [5]


def test_any_of_fires_on_first():
    env = Environment()
    done_at = []

    def proc(env):
        yield env.any_of([env.timeout(1), env.timeout(5)])
        done_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert done_at == [1]


def test_and_or_operators():
    env = Environment()
    marks = []

    def proc(env):
        yield env.timeout(1) & env.timeout(2)
        marks.append(env.now)
        yield env.timeout(1) | env.timeout(9)
        marks.append(env.now)

    env.process(proc(env))
    env.run()
    assert marks == [2, 3]


def test_interrupt_reaches_process():
    env = Environment()
    caught = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            caught.append((env.now, exc.cause))

    def attacker(env, victim_proc):
        yield env.timeout(3)
        victim_proc.interrupt("stop")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert caught == [(3, "stop")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_run_until_event_deadlock_detected():
    env = Environment()
    ev = env.event()  # nobody ever triggers this
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run(until=ev)


def test_peek_empty_queue_is_infinity():
    env = Environment()
    assert env.peek() == float("inf")


def test_immediate_event_chain_runs_same_timestep():
    env = Environment()
    trace = []

    def proc(env):
        for _ in range(5):
            yield env.timeout(0)
        trace.append(env.now)

    env.process(proc(env))
    env.run()
    assert trace == [0.0]


def test_timeout_at_absolute_time():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(1.5)
        yield env.timeout_at(4.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [4.0]


def test_timeout_at_now_fires_without_advancing():
    # an accumulated end can land exactly on `now` after a run of
    # zero-duration chunks; that must be a zero-delay event, not an error
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(2.0)
        yield env.timeout_at(env.now)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [2.0]


def test_timeout_at_past_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        yield env.timeout_at(2.0)

    env.process(proc(env))
    with pytest.raises(ValueError, match="in the past"):
        env.run()
