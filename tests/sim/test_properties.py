"""Property-based tests for the discrete-event kernel.

Hypothesis generates random process workloads; the invariants are the
ones every model in this repository leans on: the clock never moves
backward, every process completes, determinism holds across replays,
and resources never over-grant.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Container, Environment, Resource
from repro.sim.engine import quantize


def run_workload(delays):
    """Spawn one process per delay list; returns (env, completion log)."""
    env = Environment()
    log = []

    def proc(env, name, steps):
        for step in steps:
            yield env.timeout(step)
        log.append((name, env.now))

    for name, steps in enumerate(delays):
        env.process(proc(env, name, steps))
    env.run()
    return env, log


@given(
    st.lists(
        st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=0, max_size=6),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=80)
def test_all_processes_complete_and_clock_is_sum(delays):
    env, log = run_workload(delays)
    assert len(log) == len(delays)
    # The clock is the *exact* fold of grid-snapped delays: every delay
    # lands on the scheduling grid (see engine.TICK_BITS), and additions
    # of grid multiples below the exactness horizon never round.
    expected = {}
    for name, steps in enumerate(delays):
        t = 0.0
        for step in steps:
            t += quantize(step)
        expected[name] = t
    for name, finished_at in log:
        assert finished_at == expected[name]
    assert env.now == max(expected.values())


@given(
    st.lists(
        st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=4),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=40)
def test_determinism_across_replays(delays):
    _, log1 = run_workload(delays)
    _, log2 = run_workload(delays)
    assert log1 == log2  # identical completion order and times


@given(
    capacity=st.integers(1, 4),
    holders=st.integers(1, 10),
    hold_time=st.floats(0.1, 5.0),
)
@settings(max_examples=40)
def test_resource_never_overgrants(capacity, holders, hold_time):
    env = Environment()
    res = Resource(env, capacity=capacity)
    concurrency = {"now": 0, "peak": 0}

    def proc(env):
        with res.request() as req:
            yield req
            concurrency["now"] += 1
            concurrency["peak"] = max(concurrency["peak"], concurrency["now"])
            yield env.timeout(hold_time)
            concurrency["now"] -= 1

    for _ in range(holders):
        env.process(proc(env))
    env.run()
    assert concurrency["peak"] <= capacity
    assert env.now == pytest.approx(hold_time * -(-holders // capacity))


@given(
    amounts=st.lists(st.integers(1, 20), min_size=1, max_size=10),
)
@settings(max_examples=40)
def test_container_conserves_tokens(amounts):
    env = Environment()
    total = sum(amounts)
    tank = Container(env, capacity=total, init=total)
    taken = []

    def getter(env, amount):
        yield tank.get(amount)
        taken.append(amount)
        yield env.timeout(1)
        tank.put(amount)

    for amount in amounts:
        env.process(getter(env, amount))
    env.run()
    assert sorted(taken) == sorted(amounts)
    assert tank.level == total  # everything returned
