"""The integer scheduling grid and the calendar queue's pop order.

Two properties carry the whole bit-identity argument of the integer-tick
engine, so they get direct property tests here:

* ``tick_of``/``time_of`` are exact inverses for every tick below the
  exactness bound (2**52 ticks), and ``tick_of`` *rejects* any float
  that is not a grid multiple — silently moving a timestamp would
  invalidate every golden;
* the lazy calendar queue pops events in exactly the ``(tick, eid)``
  order of the binary heap it replaced, including same-tick cascades
  scheduled mid-drain.
"""

import random
from heapq import heappop, heappush

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.sim.engine import (
    EXACT_TICK_LIMIT,
    EXACT_TIME_LIMIT,
    Infinity,
    NEVER_TICK,
    _TICK,
    quantize,
    tick_of,
    time_of,
)


class TestGridRoundTrip:
    @given(st.integers(min_value=0, max_value=EXACT_TICK_LIMIT))
    @settings(max_examples=200)
    def test_tick_time_round_trip_is_exact(self, tick):
        assert tick_of(time_of(tick)) == tick

    @given(st.integers(min_value=0, max_value=EXACT_TICK_LIMIT))
    @settings(max_examples=200)
    def test_on_grid_floats_are_accepted(self, tick):
        seconds = tick * _TICK
        assert time_of(tick) == seconds
        assert tick_of(seconds) == tick

    @given(st.floats(min_value=1e-12, max_value=EXACT_TIME_LIMIT,
                     allow_nan=False))
    @settings(max_examples=200)
    def test_quantized_floats_round_trip(self, seconds):
        snapped = quantize(seconds)
        assert time_of(tick_of(snapped)) == snapped

    def test_off_grid_float_raises(self):
        # 1/3 s has an infinite binary expansion: not a grid multiple.
        with pytest.raises(ValueError, match="scheduling grid"):
            tick_of(1.0 / 3.0)

    @given(st.floats(min_value=1e-12, max_value=1e3, allow_nan=False))
    @settings(max_examples=200)
    def test_every_off_grid_float_raises(self, seconds):
        if quantize(seconds) == seconds:
            assert tick_of(seconds) == round(seconds / _TICK)
        else:
            with pytest.raises(ValueError, match="scheduling grid"):
                tick_of(seconds)

    def test_infinity_maps_to_never(self):
        assert tick_of(Infinity) == NEVER_TICK
        assert time_of(NEVER_TICK) == Infinity
        assert time_of(NEVER_TICK + 12345) == Infinity

    def test_exactness_bound_is_consistent(self):
        assert EXACT_TICK_LIMIT * _TICK == EXACT_TIME_LIMIT


class TestNegativeDelays:
    def test_timeout_rejects_negative_delay(self):
        env = Environment()
        with pytest.raises(ValueError, match="negative delay"):
            env.timeout(-1.0)

    def test_schedule_rejects_negative_delay(self):
        env = Environment()
        with pytest.raises(ValueError, match="negative delay"):
            env.schedule(env.event(), delay=-0.5)

    def test_past_tick_deadline_rejected(self):
        env = Environment(initial_time=1.0)
        with pytest.raises(ValueError, match="in the past"):
            env.timeout_at_tick(env.now_tick - 1)


def _children(seed, eid):
    """The events an event spawns when it fires — deterministic per eid,
    mixing zero (same-tick cascade), short and wide tick delays."""
    rng = random.Random(seed * 1000003 + eid)
    out = []
    for _ in range(rng.randrange(0, 3)):
        r = rng.random()
        if r < 0.4:
            out.append(0)
        elif r < 0.9:
            out.append(rng.randrange(1, 1 << 16))
        else:
            out.append(rng.randrange(1, 1 << 40))
    return out


def _heap_reference(seed, roots):
    """Pop order of the old binary heap keyed ``(tick, eid)``."""
    heap = []
    next_eid = 0
    for delay in roots:
        heappush(heap, (delay, next_eid))
        next_eid += 1
    order = []
    while heap and len(order) < 10_000:
        tick, eid = heappop(heap)
        order.append((tick, eid))
        for delay in _children(seed, eid):
            heappush(heap, (tick + delay, next_eid))
            next_eid += 1
    return order


def _calendar_run(seed, roots):
    """The same workload through the real engine's calendar queue."""
    env = Environment()
    order = []
    state = {"next_eid": len(roots)}

    def fire(eid):
        def callback(_ev):
            order.append((env.now_tick, eid))
            for delay in _children(seed, eid):
                child = state["next_eid"]
                state["next_eid"] = child + 1
                ev = env.timeout_at_tick(env.now_tick + delay)
                ev.callbacks.append(fire(child))
        return callback

    for eid, delay in enumerate(roots):
        ev = env.timeout_at_tick(delay)
        ev.callbacks.append(fire(eid))
    while len(order) < 10_000:
        try:
            env.step()
        except Exception:
            break
    return order


class TestCalendarQueueEquivalence:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_pop_order_matches_heap(self, seed):
        rng = random.Random(seed)
        roots = [rng.randrange(0, 1 << 16) for _ in range(rng.randrange(1, 30))]
        assert _calendar_run(seed, roots) == _heap_reference(seed, roots)

    def test_same_tick_is_fifo(self):
        env = Environment()
        fired = []
        for i in range(5):
            ev = env.timeout_at_tick(100)
            ev.callbacks.append(lambda _ev, i=i: fired.append(i))
        env.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_cascade_lands_after_queued_same_tick_events(self):
        # A zero-delay event scheduled mid-drain fires after the events
        # already queued at that tick (larger eid = later in FIFO).
        env = Environment()
        fired = []
        first = env.timeout_at_tick(7)

        def spawn(_ev):
            fired.append("first")
            child = env.timeout_at_tick(env.now_tick)
            child.callbacks.append(lambda _e: fired.append("cascade"))

        first.callbacks.append(spawn)
        second = env.timeout_at_tick(7)
        second.callbacks.append(lambda _e: fired.append("second"))
        env.run()
        assert fired == ["first", "second", "cascade"]
