"""Unit tests for the TimeSeries monitor."""

import pytest

from repro.sim import TimeSeries


def test_empty_series_defaults():
    ts = TimeSeries("mem")
    assert len(ts) == 0
    assert ts.peak() == 0.0
    assert ts.last() == 0.0
    assert ts.value_at(100) == 0.0
    assert ts.time_average() == 0.0
    assert ts.resample(1.0) == []


def test_record_and_query():
    ts = TimeSeries()
    ts.record(0, 10)
    ts.record(5, 30)
    ts.record(10, 20)
    assert ts.peak() == 30
    assert ts.last() == 20
    assert ts.value_at(0) == 10
    assert ts.value_at(4.9) == 10
    assert ts.value_at(5) == 30
    assert ts.value_at(7) == 30
    assert ts.value_at(11) == 20


def test_value_before_first_sample_is_zero():
    ts = TimeSeries()
    ts.record(5, 42)
    assert ts.value_at(4.99) == 0.0


def test_out_of_order_record_rejected():
    ts = TimeSeries()
    ts.record(5, 1)
    with pytest.raises(ValueError):
        ts.record(4, 2)


def test_equal_time_records_allowed():
    ts = TimeSeries()
    ts.record(5, 1)
    ts.record(5, 2)
    assert ts.value_at(5) == 2


def test_time_average_step_semantics():
    ts = TimeSeries()
    ts.record(0, 10)
    ts.record(5, 20)  # 10 for [0,5), 20 for [5,10)
    assert ts.time_average(0, 10) == pytest.approx(15.0)


def test_time_average_partial_window():
    ts = TimeSeries()
    ts.record(0, 10)
    ts.record(4, 30)
    # window [2, 6): 10 for [2,4), 30 for [4,6) -> 20
    assert ts.time_average(2, 6) == pytest.approx(20.0)


def test_resample_interval():
    ts = TimeSeries()
    ts.record(0, 1)
    ts.record(2, 3)
    samples = ts.resample(1.0)
    assert samples == [(0.0, 1.0), (1.0, 1.0), (2.0, 3.0)]


def test_resample_requires_positive_interval():
    ts = TimeSeries()
    ts.record(0, 1)
    with pytest.raises(ValueError):
        ts.resample(0)
