"""Unit tests for the MPI-IO file layer."""

import pytest

from repro.hpc import Cluster, MB, TITAN
from repro.mpi import Communicator
from repro.mpi.io import MpiFile, MpiFileError
from repro.sim import Environment


def make(nranks=4):
    env = Environment()
    cluster = Cluster(env, TITAN)
    nodes = [cluster.node(i) for i in range(nranks)]
    comm = Communicator(cluster, nodes, name="io")
    return env, cluster, comm


def run_all(env, comm, body):
    procs = [env.process(body(comm.rank(i))) for i in range(comm.size)]

    def main(env):
        yield env.all_of(procs)

    done = env.process(main(env))
    env.run(until=done)


class TestMpiFile:
    def test_collective_open_write_close(self):
        env, cluster, comm = make(4)
        f = MpiFile(comm, cluster.lustre, "/scratch/out.bp")

        def body(rank):
            yield from f.open(rank)
            yield from f.write_at(rank, rank.index * MB, 1 * MB)
            yield from f.close(rank)

        run_all(env, comm, body)
        assert f.closed
        assert cluster.lustre.bytes_written == 4 * MB
        assert cluster.lustre.files_created == 1

    def test_write_before_open_rejected(self):
        env, cluster, comm = make(2)
        f = MpiFile(comm, cluster.lustre, "/x")
        gen = f.write_at(comm.rank(0), 0, 10)
        with pytest.raises(MpiFileError):
            next(gen)

    def test_write_after_close_rejected(self):
        env, cluster, comm = make(2)
        f = MpiFile(comm, cluster.lustre, "/x")

        def body(rank):
            yield from f.open(rank)
            yield from f.close(rank)

        run_all(env, comm, body)
        with pytest.raises(MpiFileError):
            next(f.write_at(comm.rank(0), 0, 10))

    def test_open_charges_one_mds_op_per_rank(self):
        env, cluster, comm = make(4)
        f = MpiFile(comm, cluster.lustre, "/x")

        def body(rank):
            yield from f.open(rank)

        run_all(env, comm, body)
        # 4 opens + 1 create, serialized through 4 MDS: >= 2 op times.
        assert env.now >= 2 * cluster.lustre.spec.mds_op_time - 1e-9

    def test_collective_write_moves_all_bytes(self):
        env, cluster, comm = make(4)
        f = MpiFile(comm, cluster.lustre, "/x")

        def body(rank):
            yield from f.open(rank)
            yield from f.write_at_all(rank, 0, 2 * MB)
            yield from f.close(rank)

        run_all(env, comm, body)
        assert cluster.lustre.bytes_written == 8 * MB

    def test_read_at(self):
        env, cluster, comm = make(2)
        f = MpiFile(comm, cluster.lustre, "/x")

        def body(rank):
            yield from f.open(rank)
            yield from f.read_at(rank, 0, 3 * MB)

        run_all(env, comm, body)
        assert cluster.lustre.bytes_read == 6 * MB
