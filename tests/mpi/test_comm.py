"""Unit tests for the simulated MPI runtime."""

import pytest

from repro.hpc import Cluster, MB, TITAN
from repro.mpi import ANY_SOURCE, Communicator
from repro.sim import Environment


def make_comm(nranks=4, machine=TITAN, ranks_per_node=2):
    env = Environment()
    cluster = Cluster(env, machine)
    nodes = [cluster.node(i // ranks_per_node) for i in range(nranks)]
    return env, Communicator(cluster, nodes, name="test")


def test_empty_communicator_rejected():
    env = Environment()
    cluster = Cluster(env, TITAN)
    with pytest.raises(ValueError):
        Communicator(cluster, [])


def test_send_recv_payload():
    env, comm = make_comm(2)
    got = []

    def sender(rank):
        yield from rank.send(1, payload={"x": 7}, nbytes=1 * MB, tag=5)

    def receiver(rank):
        msg = yield from rank.recv(src=0, tag=5)
        got.append(msg.payload)

    env.process(sender(comm.rank(0)))
    env.process(receiver(comm.rank(1)))
    env.run()
    assert got == [{"x": 7}]
    assert env.now > 0  # network time was paid


def test_send_pays_network_time():
    env, comm = make_comm(2, ranks_per_node=1)

    def sender(rank):
        yield from rank.send(1, nbytes=55 * MB)

    def receiver(rank):
        yield from rank.recv()

    env.process(sender(comm.rank(0)))
    env.process(receiver(comm.rank(1)))
    env.run()
    # 55 MB over 5.5 GB/s crossed twice (src NIC + dst NIC) ~ 0.02 s
    assert env.now == pytest.approx(0.02, rel=0.05)


def test_recv_any_source():
    env, comm = make_comm(3)
    got = []

    def sender(rank, payload):
        yield from rank.send(0, payload=payload)

    def receiver(rank):
        for _ in range(2):
            msg = yield from rank.recv(src=ANY_SOURCE)
            got.append(msg.payload)

    env.process(receiver(comm.rank(0)))
    env.process(sender(comm.rank(1), "a"))
    env.process(sender(comm.rank(2), "b"))
    env.run()
    assert sorted(got) == ["a", "b"]


def test_recv_filters_by_tag():
    env, comm = make_comm(2)
    order = []

    def sender(rank):
        yield from rank.send(1, payload="first", tag=1)
        yield from rank.send(1, payload="second", tag=2)

    def receiver(rank):
        msg = yield from rank.recv(tag=2)
        order.append(msg.payload)
        msg = yield from rank.recv(tag=1)
        order.append(msg.payload)

    env.process(sender(comm.rank(0)))
    env.process(receiver(comm.rank(1)))
    env.run()
    assert order == ["second", "first"]


def test_barrier_synchronizes():
    env, comm = make_comm(3)
    times = []

    def proc(rank, delay):
        yield rank.env.timeout(delay)
        yield from rank.barrier()
        times.append(env.now)

    for i, delay in enumerate([1, 5, 3]):
        env.process(proc(comm.rank(i), delay))
    env.run()
    assert times == [5, 5, 5]


def test_barrier_reusable_across_generations():
    env, comm = make_comm(2)
    times = []

    def proc(rank, delay):
        yield rank.env.timeout(delay)
        yield from rank.barrier()
        times.append(("b1", env.now))
        yield rank.env.timeout(delay)
        yield from rank.barrier()
        times.append(("b2", env.now))

    env.process(proc(comm.rank(0), 1))
    env.process(proc(comm.rank(1), 2))
    env.run()
    assert [t for t in times if t[0] == "b1"] == [("b1", 2), ("b1", 2)]
    assert [t for t in times if t[0] == "b2"] == [("b2", 4), ("b2", 4)]


def test_bcast_delivers_to_all():
    env, comm = make_comm(4)
    got = []

    def proc(rank):
        value = yield from rank.bcast("hello" if rank.index == 0 else None, nbytes=8)
        got.append((rank.index, value))

    for r in comm.ranks():
        env.process(proc(r))
    env.run()
    assert sorted(got) == [(i, "hello") for i in range(4)]


def test_gather_collects_in_rank_order():
    env, comm = make_comm(4)
    result = []

    def proc(rank):
        values = yield from rank.gather(rank.index * 10)
        if rank.index == 0:
            result.append(values)

    for r in comm.ranks():
        env.process(proc(r))
    env.run()
    assert result == [[0, 10, 20, 30]]


def test_allreduce_sum_on_all_ranks():
    env, comm = make_comm(4)
    results = []

    def proc(rank):
        total = yield from rank.allreduce(rank.index + 1)
        results.append(total)

    for r in comm.ranks():
        env.process(proc(r))
    env.run()
    assert results == [10, 10, 10, 10]


def test_allreduce_custom_op():
    env, comm = make_comm(3)
    results = []

    def proc(rank):
        top = yield from rank.allreduce(rank.index, op=max)
        results.append(top)

    for r in comm.ranks():
        env.process(proc(r))
    env.run()
    assert results == [2, 2, 2]


def test_compute_scales_with_machine():
    from repro.hpc import CORI

    env, comm = make_comm(1, machine=CORI, ranks_per_node=1)

    def proc(rank):
        yield rank.compute(10.0)

    env.process(proc(comm.rank(0)))
    env.run()
    assert env.now == pytest.approx(10.0 / CORI.relative_core_speed)


def test_rank_memory_rolls_up_to_node():
    env, comm = make_comm(2, ranks_per_node=2)
    r0, r1 = comm.rank(0), comm.rank(1)
    r0.memory.allocate(3 * MB, "calculation")
    r1.memory.allocate(4 * MB, "calculation")
    assert r0.node is r1.node
    assert r0.node.memory.total == 7 * MB
