"""Unit tests for the Jacobi Laplace kernel."""

import numpy as np
import pytest

from repro.kernels import LaplaceSimulation, analytic_error, jacobi_step


def test_jacobi_step_preserves_boundaries():
    sim = LaplaceSimulation((8, 8), top=100.0)
    sim.step(5)
    assert np.all(sim.grid[0, 1:-1] == 100.0)
    assert np.all(sim.grid[-1, :] == 0.0)


def test_jacobi_step_shape_validation():
    with pytest.raises(ValueError):
        jacobi_step(np.zeros((2, 5)))
    with pytest.raises(ValueError):
        jacobi_step(np.zeros(5))


def test_change_decreases_monotonically_late():
    sim = LaplaceSimulation((16, 16))
    changes = [sim.step() for _ in range(100)]
    assert changes[-1] < changes[10]


def test_solve_converges():
    sim = LaplaceSimulation((12, 12))
    iters = sim.solve(tol=1e-3)
    assert iters > 0
    assert sim.last_change <= 1e-3


def test_solve_max_iter_guard():
    sim = LaplaceSimulation((64, 64))
    with pytest.raises(RuntimeError):
        sim.solve(tol=1e-12, max_iter=10)


def test_interior_bounded_by_boundary_values():
    """Maximum principle: the solution lies within the boundary range."""
    sim = LaplaceSimulation((16, 16), top=100.0)
    sim.solve(tol=1e-4)
    interior = sim.grid[1:-1, 1:-1]
    assert interior.min() >= 0.0
    assert interior.max() <= 100.0


def test_matches_analytic_series_solution():
    sim = LaplaceSimulation((32, 32), top=100.0)
    sim.solve(tol=1e-5)
    assert analytic_error(sim.grid) < 1.0  # RMS out of a 0..100 range


def test_snapshot_is_copy():
    sim = LaplaceSimulation((8, 8))
    snap = sim.snapshot()
    snap[:] = -1
    assert sim.grid.max() > 0
