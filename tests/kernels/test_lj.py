"""Unit tests for the Lennard-Jones MD kernel."""

import numpy as np
import pytest

from repro.kernels import LJSimulation, cubic_lattice, lj_forces


def test_lattice_atom_count_and_box():
    pos, box = cubic_lattice(2, density=0.8)
    assert pos.shape == (32, 3)
    assert box == pytest.approx((32 / 0.8) ** (1 / 3))
    assert np.all(pos >= 0)
    assert np.all(pos < box + 1e-9)


def test_lattice_invalid_cells():
    with pytest.raises(ValueError):
        cubic_lattice(0)


def test_forces_newtons_third_law():
    pos, box = cubic_lattice(2)
    forces, _ = lj_forces(pos, box)
    np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-9)


def test_forces_repulsive_at_close_range():
    pos = np.array([[0.0, 0.0, 0.0], [0.9, 0.0, 0.0]])
    forces, energy = lj_forces(pos, box=100.0)
    # Below the LJ minimum (2^(1/6) sigma): strong repulsion apart.
    assert forces[0, 0] < 0
    assert forces[1, 0] > 0
    assert energy > 0


def test_forces_attractive_near_cutoff():
    pos = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
    forces, energy = lj_forces(pos, box=100.0)
    assert forces[0, 0] > 0  # pulled toward the other atom
    assert energy < 0


def test_energy_drift_small_over_short_run():
    sim = LJSimulation(cells=2, temperature=1.0, dt=0.002)
    e0 = sim.total_energy
    sim.step(50)
    drift = abs(sim.total_energy - e0) / abs(e0)
    assert drift < 0.05


def test_momentum_conserved():
    sim = LJSimulation(cells=2, temperature=2.0)
    sim.step(20)
    momentum = sim.velocities.sum(axis=0)
    np.testing.assert_allclose(momentum, 0.0, atol=1e-8)


def test_melting_increases_msd():
    """The melt: atoms leave their lattice sites over time."""
    from repro.kernels import mean_squared_displacement

    sim = LJSimulation(cells=2, temperature=3.0)
    ref = sim.unwrapped.copy()
    sim.step(30)
    early = mean_squared_displacement(sim.unwrapped, ref)
    sim.step(60)
    late = mean_squared_displacement(sim.unwrapped, ref)
    assert late > early > 0


def test_positions_stay_in_box():
    sim = LJSimulation(cells=2, temperature=3.0)
    sim.step(40)
    assert np.all(sim.positions >= 0)
    assert np.all(sim.positions < sim.box)


def test_snapshot_shape_matches_table2_layout():
    sim = LJSimulation(cells=2)
    snap = sim.snapshot()
    assert snap.shape == (5, sim.natoms)


def test_temperature_positive():
    sim = LJSimulation(cells=2, temperature=1.5)
    assert sim.temperature > 0
