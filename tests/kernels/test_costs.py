"""Unit tests for the calibrated cost models."""

import pytest

from repro.hpc import MB
from repro.kernels import (
    LAMMPS_COSTS,
    LAPLACE_COSTS,
    SYNTHETIC_COSTS,
    laplace_ana_step_for_size,
    laplace_sim_step_for_size,
)


def test_laplace_heavier_than_lammps():
    """"The compute-intensive Laplace workflow" — both phases heavier."""
    assert LAPLACE_COSTS.sim_step > LAMMPS_COSTS.sim_step
    assert LAPLACE_COSTS.ana_step > LAMMPS_COSTS.ana_step


def test_synthetic_has_no_compute():
    assert SYNTHETIC_COSTS.sim_step == 0.0
    assert SYNTHETIC_COSTS.ana_step == 0.0


def test_laplace_size_scaling_anchored_at_128mb():
    assert laplace_sim_step_for_size(128 * MB) == LAPLACE_COSTS.sim_step
    assert laplace_ana_step_for_size(128 * MB) == LAPLACE_COSTS.ana_step


def test_laplace_size_scaling_linear():
    assert laplace_sim_step_for_size(64 * MB) == pytest.approx(
        LAPLACE_COSTS.sim_step / 2
    )
    assert laplace_ana_step_for_size(32 * MB) == pytest.approx(
        LAPLACE_COSTS.ana_step / 4
    )
