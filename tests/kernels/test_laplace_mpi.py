"""Tests for the distributed Jacobi solver on the simulated MPI."""

import numpy as np
import pytest

from repro.hpc import Cluster, TITAN
from repro.kernels import LaplaceSimulation
from repro.kernels.laplace_mpi import (
    ParallelLaplace,
    gather_solution,
    solve_parallel,
    split_rows,
)
from repro.mpi import Communicator
from repro.sim import Environment


def make_comm(nranks):
    env = Environment()
    cluster = Cluster(env, TITAN)
    nodes = [cluster.node(i) for i in range(nranks)]
    return env, Communicator(cluster, nodes, name="laplace")


class TestSplitRows:
    def test_even(self):
        assert split_rows(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread(self):
        ranges = split_rows(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_covering_and_contiguous(self):
        ranges = split_rows(17, 5)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 17
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_rows(2, 4)


class TestParallelSolve:
    def test_matches_serial_solver(self):
        """The distributed solve equals the serial solver exactly
        (same sweeps, same arithmetic)."""
        shape = (16, 12)
        serial = LaplaceSimulation(shape, top=100.0)
        env, comm = make_comm(4)
        solvers = solve_parallel(comm, shape, tol=1e-3, top=100.0)
        parallel = gather_solution(solvers)

        serial.solve(tol=1e-3)
        # Iterate the serial solver to the same sweep count for an
        # exact comparison (convergence may differ by one sweep).
        iters = solvers[0].iterations
        serial2 = LaplaceSimulation(shape, top=100.0)
        serial2.step(iters)
        np.testing.assert_allclose(parallel, serial2.grid, atol=1e-12)

    def test_all_ranks_agree_on_convergence(self):
        env, comm = make_comm(3)
        solvers = solve_parallel(comm, (12, 8), tol=1e-3)
        iters = {s.iterations for s in solvers.values()}
        assert len(iters) == 1  # the allreduce keeps everyone in sync
        assert all(s.last_change <= 1e-3 for s in solvers.values())

    def test_boundaries_preserved(self):
        env, comm = make_comm(2)
        solvers = solve_parallel(comm, (10, 10), tol=1e-2, top=50.0)
        grid = gather_solution(solvers)
        assert np.all(grid[0, 1:-1] == 50.0)
        assert np.all(grid[-1, :] == 0.0)
        assert np.all(grid[:, 0] == 0.0)

    def test_halo_exchange_pays_network_time(self):
        env, comm = make_comm(4)
        solve_parallel(comm, (12, 8), tol=1e-2)
        assert env.now > 0  # sweeps cost simulated communication time

    def test_single_rank_degenerates_to_serial(self):
        env, comm = make_comm(1)
        solvers = solve_parallel(comm, (10, 10), tol=1e-3)
        serial = LaplaceSimulation((10, 10))
        serial.step(solvers[0].iterations)
        np.testing.assert_allclose(
            gather_solution(solvers), serial.grid, atol=1e-12
        )

    def test_invalid_grid(self):
        env, comm = make_comm(2)
        with pytest.raises(ValueError):
            ParallelLaplace(comm.rank(0), (2, 10))
