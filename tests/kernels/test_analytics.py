"""Unit and property tests for MSD and the moment analysis (MTA)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    MomentAccumulator,
    combine_slab_moments,
    mean_squared_displacement,
    msd_series,
    turbulence_moments,
)


class TestMsd:
    def test_zero_displacement(self):
        pos = np.random.default_rng(0).random((10, 3))
        assert mean_squared_displacement(pos, pos) == 0.0

    def test_uniform_shift(self):
        pos = np.zeros((5, 3))
        shifted = pos + np.array([1.0, 2.0, 2.0])
        assert mean_squared_displacement(shifted, pos) == pytest.approx(9.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((5, 3)), np.zeros((4, 3)))

    def test_series(self):
        ref = np.zeros((4, 3))
        frames = [ref + i for i in range(3)]
        series = msd_series(frames, ref)
        assert series == [pytest.approx(0.0), pytest.approx(3.0), pytest.approx(12.0)]


class TestMoments:
    def test_known_values(self):
        acc = MomentAccumulator().add_array(np.array([1.0, 2.0, 3.0, 4.0]))
        assert acc.n == 4
        assert acc.mean == pytest.approx(2.5)
        assert acc.variance == pytest.approx(1.25)

    def test_against_numpy_moments(self):
        rng = np.random.default_rng(7)
        data = rng.normal(3.0, 2.0, 1000)
        acc = MomentAccumulator().add_array(data)
        centered = data - data.mean()
        assert acc.central_moment(2) == pytest.approx(np.mean(centered**2))
        assert acc.central_moment(3) == pytest.approx(np.mean(centered**3), rel=1e-9, abs=1e-9)
        assert acc.central_moment(4) == pytest.approx(np.mean(centered**4))

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(3)
        a, b = rng.random(400), rng.random(300) * 5
        merged = MomentAccumulator().add_array(a).merge(
            MomentAccumulator().add_array(b)
        )
        direct = MomentAccumulator().add_array(np.concatenate([a, b]))
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.m2 == pytest.approx(direct.m2)
        assert merged.m3 == pytest.approx(direct.m3, rel=1e-6, abs=1e-6)
        assert merged.m4 == pytest.approx(direct.m4, rel=1e-6)

    def test_merge_with_empty(self):
        acc = MomentAccumulator().add_array(np.array([1.0, 2.0]))
        merged = acc.merge(MomentAccumulator())
        assert merged.n == 2
        merged = MomentAccumulator().merge(acc)
        assert merged.mean == pytest.approx(1.5)

    def test_skewness_of_symmetric_data(self):
        data = np.concatenate([np.arange(100.0), -np.arange(100.0)])
        acc = MomentAccumulator().add_array(data)
        assert acc.skewness == pytest.approx(0.0, abs=1e-9)

    def test_kurtosis_of_normal_near_three(self):
        rng = np.random.default_rng(11)
        acc = MomentAccumulator().add_array(rng.normal(0, 1, 200000))
        assert acc.kurtosis == pytest.approx(3.0, abs=0.1)

    def test_invalid_order(self):
        acc = MomentAccumulator().add_array(np.array([1.0]))
        with pytest.raises(ValueError):
            acc.central_moment(5)

    def test_turbulence_moments_record(self):
        field = np.random.default_rng(0).random((16, 16))
        record = turbulence_moments(field)
        assert set(record) == {"m2", "m3", "m4"}
        assert record["m2"] > 0

    def test_combine_slab_moments_equals_global(self):
        """The parallel MTA invariant: per-slab merge == global pass."""
        rng = np.random.default_rng(5)
        field = rng.normal(0, 1, (8, 64))
        slabs = np.split(field, 4, axis=1)
        partials = [MomentAccumulator().add_array(s) for s in slabs]
        combined = combine_slab_moments(partials)
        direct = MomentAccumulator().add_array(field)
        assert combined.central_moment(2) == pytest.approx(direct.central_moment(2))
        assert combined.central_moment(4) == pytest.approx(direct.central_moment(4))

    @given(
        st.lists(
            st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_property_merge_order_independent(self, blocks):
        arrays = [np.array(b) for b in blocks]
        forward = combine_slab_moments(
            MomentAccumulator().add_array(a) for a in arrays
        )
        backward = combine_slab_moments(
            MomentAccumulator().add_array(a) for a in reversed(arrays)
        )
        assert forward.n == backward.n
        assert forward.mean == pytest.approx(backward.mean, rel=1e-9, abs=1e-9)
        assert forward.m2 == pytest.approx(backward.m2, rel=1e-6, abs=1e-6)
